// Package netsensor implements the Network Weather Service's other sensor
// family: end-to-end TCP latency and bandwidth probes between host pairs.
// The CPU paper (HPDC 1999) evaluates only the CPU sensor, but the NWS it
// describes forecasts network performance with exactly this kind of probe
// (Wolski, Cluster Computing 1998), and the forecasting engine of package
// forecast applies to these series unchanged.
//
// A Reflector is the passive endpoint: it echoes latency probes and sinks
// bandwidth probes. Sensors hold a persistent connection to a Reflector and
// produce one measurement per Measure call:
//
//   - LatencySensor: round-trip time of a small message, in seconds.
//   - BandwidthSensor: throughput of a fixed-size transfer, in bytes/second.
package netsensor

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Probe type bytes on the wire.
const (
	probeEcho = 0x01 // followed by u32 length and payload; reflected back
	probeSink = 0x02 // followed by u32 length and payload; acked with u32 length
)

// Reflector is the passive measurement endpoint.
type Reflector struct {
	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewReflector returns an unstarted reflector.
func NewReflector() *Reflector {
	return &Reflector{conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (":0" for ephemeral) and serves probes in background
// goroutines, returning the bound address.
func (r *Reflector) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		l.Close()
		return "", errors.New("netsensor: reflector already closed")
	}
	r.listener = l
	r.mu.Unlock()
	r.wg.Add(1)
	go r.acceptLoop(l)
	return l.Addr().String(), nil
}

func (r *Reflector) acceptLoop(l net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.serve(conn)
	}
}

func (r *Reflector) serve(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriter(conn)
	var hdr [5]byte
	buf := make([]byte, 64<<10)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		if n > maxProbeBytes {
			return // protocol violation
		}
		switch hdr[0] {
		case probeEcho:
			if int(n) > len(buf) {
				buf = make([]byte, n)
			}
			if _, err := io.ReadFull(br, buf[:n]); err != nil {
				return
			}
			if _, err := bw.Write(hdr[:]); err != nil {
				return
			}
			if _, err := bw.Write(buf[:n]); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		case probeSink:
			if _, err := io.CopyN(io.Discard, br, int64(n)); err != nil {
				return
			}
			var ack [4]byte
			binary.BigEndian.PutUint32(ack[:], n)
			if _, err := bw.Write(ack[:]); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		default:
			return
		}
	}
}

// Close stops the reflector and waits for its goroutines.
func (r *Reflector) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	l := r.listener
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	r.wg.Wait()
	return err
}

// maxProbeBytes bounds a single probe (16 MiB).
const maxProbeBytes = 16 << 20

// probeConn is the shared persistent-connection machinery of the sensors.
type probeConn struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

func newProbeConn(addr string, timeout time.Duration) *probeConn {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &probeConn{addr: addr, timeout: timeout}
}

func (pc *probeConn) ensureLocked() error {
	if pc.c != nil {
		return nil
	}
	c, err := net.DialTimeout("tcp", pc.addr, pc.timeout)
	if err != nil {
		return fmt.Errorf("netsensor: dial %s: %w", pc.addr, err)
	}
	pc.c = c
	pc.r = bufio.NewReaderSize(c, 64<<10)
	pc.w = bufio.NewWriterSize(c, 64<<10)
	return nil
}

func (pc *probeConn) resetLocked() {
	if pc.c != nil {
		pc.c.Close()
	}
	pc.c, pc.r, pc.w = nil, nil, nil
}

// Close drops the connection; the next probe redials.
func (pc *probeConn) Close() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var err error
	if pc.c != nil {
		err = pc.c.Close()
	}
	pc.c, pc.r, pc.w = nil, nil, nil
	return err
}

// LatencySensor measures small-message round-trip time to a Reflector.
type LatencySensor struct {
	pc      *probeConn
	payload []byte
}

// NewLatencySensor returns a latency sensor probing the reflector at addr
// with payloadBytes-sized messages (clamped to [1, 64 KiB]; the NWS default
// is 4 bytes).
func NewLatencySensor(addr string, payloadBytes int, timeout time.Duration) *LatencySensor {
	if payloadBytes < 1 {
		payloadBytes = 4
	}
	if payloadBytes > 64<<10 {
		payloadBytes = 64 << 10
	}
	return &LatencySensor{
		pc:      newProbeConn(addr, timeout),
		payload: make([]byte, payloadBytes),
	}
}

// Name identifies the sensor in series keys.
func (s *LatencySensor) Name() string { return "net_latency" }

// Measure returns one round-trip time in seconds.
func (s *LatencySensor) Measure() (float64, error) {
	s.pc.mu.Lock()
	defer s.pc.mu.Unlock()
	if err := s.pc.ensureLocked(); err != nil {
		return 0, err
	}
	if err := s.pc.c.SetDeadline(time.Now().Add(s.pc.timeout)); err != nil {
		return 0, err
	}
	var hdr [5]byte
	hdr[0] = probeEcho
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(s.payload)))

	start := time.Now()
	if _, err := s.pc.w.Write(hdr[:]); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	if _, err := s.pc.w.Write(s.payload); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	if err := s.pc.w.Flush(); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	var back [5]byte
	if _, err := io.ReadFull(s.pc.r, back[:]); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	if _, err := io.CopyN(io.Discard, s.pc.r, int64(binary.BigEndian.Uint32(back[1:]))); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// Close releases the sensor's connection.
func (s *LatencySensor) Close() error { return s.pc.Close() }

// BandwidthSensor measures TCP throughput to a Reflector.
type BandwidthSensor struct {
	pc  *probeConn
	buf []byte
}

// NewBandwidthSensor returns a bandwidth sensor transferring probeBytes per
// measurement (clamped to [64 KiB, 16 MiB]; the NWS default experiment size
// is 64 KiB).
func NewBandwidthSensor(addr string, probeBytes int, timeout time.Duration) *BandwidthSensor {
	if probeBytes < 64<<10 {
		probeBytes = 64 << 10
	}
	if probeBytes > maxProbeBytes {
		probeBytes = maxProbeBytes
	}
	return &BandwidthSensor{
		pc:  newProbeConn(addr, timeout),
		buf: make([]byte, probeBytes),
	}
}

// Name identifies the sensor in series keys.
func (s *BandwidthSensor) Name() string { return "net_bandwidth" }

// Measure returns one throughput sample in bytes per second: the probe
// payload is streamed to the reflector and the clock stops when its ack
// returns, so the sample includes the full transfer.
func (s *BandwidthSensor) Measure() (float64, error) {
	s.pc.mu.Lock()
	defer s.pc.mu.Unlock()
	if err := s.pc.ensureLocked(); err != nil {
		return 0, err
	}
	if err := s.pc.c.SetDeadline(time.Now().Add(s.pc.timeout)); err != nil {
		return 0, err
	}
	var hdr [5]byte
	hdr[0] = probeSink
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(s.buf)))

	start := time.Now()
	if _, err := s.pc.w.Write(hdr[:]); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	if _, err := s.pc.w.Write(s.buf); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	if err := s.pc.w.Flush(); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	var ack [4]byte
	if _, err := io.ReadFull(s.pc.r, ack[:]); err != nil {
		s.pc.resetLocked()
		return 0, err
	}
	if got := binary.BigEndian.Uint32(ack[:]); int(got) != len(s.buf) {
		s.pc.resetLocked()
		return 0, fmt.Errorf("netsensor: reflector acked %d of %d bytes", got, len(s.buf))
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, errors.New("netsensor: zero-duration transfer")
	}
	return float64(len(s.buf)) / elapsed, nil
}

// Close releases the sensor's connection.
func (s *BandwidthSensor) Close() error { return s.pc.Close() }
