package report

import (
	"bytes"
	"strings"
	"testing"

	"nwscpu/internal/experiments"
)

func TestGenerateReport(t *testing.T) {
	s := experiments.NewSuite(experiments.QuickConfig())
	var buf bytes.Buffer
	if err := Generate(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Table 1",
		"Table 4",
		"Table 6",
		"conundrum",
		"kongo",
		"Figure 1",
		"Figure 3",
		"<svg",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q (length %d)", want, len(out))
		}
	}
	// 2 hosts x 4 figures = 8 charts.
	if got := strings.Count(out, "<svg"); got != 8 {
		t.Fatalf("chart count = %d, want 8", got)
	}
	// The SVG bodies must contain actual data marks.
	if !strings.Contains(out, "<polyline") || !strings.Contains(out, "<circle") {
		t.Fatal("charts contain no data marks")
	}
}

func TestChartPrimitives(t *testing.T) {
	ch := newChart("t", "x", "y", 0, 10, 0, 1)
	ch.polyline([]float64{0, 5, 10}, []float64{0, 2, 0.5}, "#000", 100) // 2 clamps to 1
	ch.scatter([]float64{1, 2}, []float64{0.1, 0.2}, "#111", 2)
	ch.line(0, 0, 10, 1, "#222", "2,2")
	out := ch.String()
	for _, want := range []string{"<svg", "<polyline", "<circle", "stroke-dasharray", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Equal min/max must not divide by zero.
	ch := newChart("t", "x", "y", 5, 5, 3, 3)
	ch.polyline([]float64{5}, []float64{3}, "#000", 10)
	if !strings.Contains(ch.String(), "<svg") {
		t.Fatal("degenerate chart failed to render")
	}
}

func TestChartDecimation(t *testing.T) {
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5
	}
	ch := newChart("t", "x", "y", 0, float64(n), 0, 1)
	ch.polyline(xs, ys, "#000", 200)
	pts := strings.Count(ch.String(), ",")
	if pts > 600 { // ~200 points, each one comma, plus axis text commas
		t.Fatalf("decimation ineffective: ~%d points", pts)
	}
}

func TestEscape(t *testing.T) {
	if got := escape("a<b>&c"); got != "a&lt;b&gt;&amp;c" {
		t.Fatalf("escape = %q", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		200000: "200k",
		150:    "150",
		2.5:    "2.5",
		0.25:   "0.25",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
