// Package report renders the reproduced evaluation as a self-contained HTML
// document with inline SVG charts — the publishable artifact of a full
// experiment run, built entirely with the standard library.
package report

import (
	"fmt"
	"math"
	"strings"
)

// svgChart accumulates an SVG line/scatter chart.
type svgChart struct {
	width, height                      int
	marginL, marginB, marginT, marginR int
	xMin, xMax                         float64
	yMin, yMax                         float64
	title                              string
	xLabel, yLabel                     string
	body                               strings.Builder
}

func newChart(title, xLabel, yLabel string, xMin, xMax, yMin, yMax float64) *svgChart {
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	return &svgChart{
		width: 720, height: 280,
		marginL: 56, marginB: 36, marginT: 28, marginR: 16,
		xMin: xMin, xMax: xMax, yMin: yMin, yMax: yMax,
		title: title, xLabel: xLabel, yLabel: yLabel,
	}
}

func (c *svgChart) plotW() float64 { return float64(c.width - c.marginL - c.marginR) }
func (c *svgChart) plotH() float64 { return float64(c.height - c.marginT - c.marginB) }

func (c *svgChart) x(v float64) float64 {
	return float64(c.marginL) + (v-c.xMin)/(c.xMax-c.xMin)*c.plotW()
}

func (c *svgChart) y(v float64) float64 {
	return float64(c.marginT) + (1-(v-c.yMin)/(c.yMax-c.yMin))*c.plotH()
}

// polyline adds a decimated line trace: at most maxPts points are kept so
// the SVG stays small for day-long series.
func (c *svgChart) polyline(xs, ys []float64, color string, maxPts int) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return
	}
	if maxPts < 2 {
		maxPts = 2
	}
	stride := 1
	if n > maxPts {
		stride = n / maxPts
	}
	var pts strings.Builder
	for i := 0; i < n; i += stride {
		fmt.Fprintf(&pts, "%.1f,%.1f ", c.x(xs[i]), c.y(clampRange(ys[i], c.yMin, c.yMax)))
	}
	fmt.Fprintf(&c.body, `<polyline fill="none" stroke="%s" stroke-width="1" points="%s"/>`+"\n",
		color, strings.TrimSpace(pts.String()))
}

// scatter adds point markers.
func (c *svgChart) scatter(xs, ys []float64, color string, r float64) {
	for i := range xs {
		if i >= len(ys) {
			break
		}
		fmt.Fprintf(&c.body, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.5"/>`+"\n",
			c.x(xs[i]), c.y(clampRange(ys[i], c.yMin, c.yMax)), r, color)
	}
}

// line adds a straight reference line between two data-space points.
func (c *svgChart) line(x1, y1, x2, y2 float64, color, dash string) {
	extra := ""
	if dash != "" {
		extra = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
	}
	fmt.Fprintf(&c.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"%s/>`+"\n",
		c.x(x1), c.y(y1), c.x(x2), c.y(y2), color, extra)
}

func clampRange(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders the complete SVG element with axes, ticks and labels.
func (c *svgChart) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`+"\n",
		c.width, c.height, c.width, c.height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.width, c.height)
	// Title.
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="13" font-weight="bold">%s</text>`+"\n",
		c.marginL, escape(c.title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		c.marginL, c.marginT, c.marginL, c.height-c.marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		c.marginL, c.height-c.marginB, c.width-c.marginR, c.height-c.marginB)
	// Ticks: 5 on each axis.
	for i := 0; i <= 4; i++ {
		fy := c.yMin + (c.yMax-c.yMin)*float64(i)/4
		py := c.y(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			c.marginL, py, c.width-c.marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			c.marginL-4, py+3, formatTick(fy))
		fx := c.xMin + (c.xMax-c.xMin)*float64(i)/4
		px := c.x(fx)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px, c.height-c.marginB+14, formatTick(fx))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		c.marginL+int(c.plotW()/2), c.height-6, escape(c.xLabel))
	fmt.Fprintf(&b, `<text x="12" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 12 %d)">%s</text>`+"\n",
		c.marginT+int(c.plotH()/2), c.marginT+int(c.plotH()/2), escape(c.yLabel))
	b.WriteString(c.body.String())
	b.WriteString("</svg>\n")
	return b.String()
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100000:
		return fmt.Sprintf("%.0fk", v/1000)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
