package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal fixed-width text table writer for terminal reports:
// left-aligned headers, right-aligned numeric-looking cells, a dashed rule
// under the header. Output is byte-deterministic in the rows it is given —
// the capacity-planning reports (cmd/nwsgrid) rely on that for their
// same-seed byte-identity guarantee, so keep any future formatting changes
// deterministic too.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; missing cells render empty, extra cells are
// dropped to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// numeric reports whether a cell should right-align (starts with a digit,
// sign, or dot — covers plain numbers, percentages and durations).
func numeric(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.'
}

// Render writes the table to w followed by a blank line.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if numeric(c) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
