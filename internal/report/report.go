package report

import (
	"fmt"
	"html/template"
	"io"
	"strings"

	"nwscpu/internal/core"
	"nwscpu/internal/experiments"
)

// Generate runs every table and figure of the suite and writes a
// self-contained HTML report to w. The expensive simulations are the
// suite's; cached runs are reused.
func Generate(s *experiments.Suite, w io.Writer) error {
	data := &pageData{Title: "Predicting CPU Availability of Time-shared Unix Systems — reproduction report"}

	t1, err := s.Table1()
	if err != nil {
		return err
	}
	t2, err := s.Table2()
	if err != nil {
		return err
	}
	t3, err := s.Table3()
	if err != nil {
		return err
	}
	t4, err := s.Table4()
	if err != nil {
		return err
	}
	t5, err := s.Table5()
	if err != nil {
		return err
	}
	t6, err := s.Table6()
	if err != nil {
		return err
	}
	data.Tables = append(data.Tables,
		htmlErrorTable(t1), htmlErrorTable(t2), htmlErrorTable(t3),
		htmlTable4(t4), htmlErrorTable(t5), htmlErrorTable(t6))

	// Figure 1: availability traces.
	f1, err := s.Figure1()
	if err != nil {
		return err
	}
	for _, host := range experiments.FigureHosts {
		tr := f1[host]
		ch := newChart(fmt.Sprintf("Figure 1 — CPU availability, %s (load average method)", host),
			"time (s)", "available fraction",
			tr.At(0).T, tr.At(tr.Len()-1).T, 0, 1)
		ch.polyline(tr.Times(), tr.Values(), "#1f77b4", 1200)
		data.Charts = append(data.Charts, template.HTML(ch.String()))
	}

	// Figure 2: autocorrelations.
	f2, err := s.Figure2()
	if err != nil {
		return err
	}
	for _, host := range experiments.FigureHosts {
		acf := f2[host]
		xs := make([]float64, len(acf))
		for i := range xs {
			xs[i] = float64(i)
		}
		ch := newChart(fmt.Sprintf("Figure 2 — first %d autocorrelations, %s", len(acf)-1, host),
			"lag (10 s each)", "autocorrelation", 0, float64(len(acf)-1), 0, 1)
		ch.polyline(xs, acf, "#d62728", 400)
		data.Charts = append(data.Charts, template.HTML(ch.String()))
	}

	// Figure 3: pox plots with the Hurst fit and reference slopes.
	f3, err := s.Figure3()
	if err != nil {
		return err
	}
	for _, pr := range f3 {
		var xs, ys []float64
		xMax, yMax := 0.0, 0.0
		for _, p := range pr.Points {
			xs = append(xs, p.LogD)
			ys = append(ys, p.LogRS)
			if p.LogD > xMax {
				xMax = p.LogD
			}
			if p.LogRS > yMax {
				yMax = p.LogRS
			}
		}
		ch := newChart(fmt.Sprintf("Figure 3 — pox plot, %s (H = %.2f)", pr.Host, pr.Hurst),
			"log10(d)", "log10(R(d)/S(d))", 0, xMax*1.05, 0, yMax*1.1)
		ch.scatter(xs, ys, "#2ca02c", 1.6)
		// Fitted line plus H = 0.5 and H = 1.0 references through the fit's
		// intercept, as in the paper's dotted guides.
		ch.line(0, pr.Fit.Intercept, xMax, pr.Fit.Intercept+pr.Fit.Slope*xMax, "#000", "")
		ch.line(0, pr.Fit.Intercept, xMax, pr.Fit.Intercept+0.5*xMax, "#888", "4,3")
		ch.line(0, pr.Fit.Intercept, xMax, pr.Fit.Intercept+1.0*xMax, "#888", "4,3")
		data.Charts = append(data.Charts, template.HTML(ch.String()))
	}

	// Figure 4: aggregated series.
	f4, err := s.Figure4()
	if err != nil {
		return err
	}
	for _, host := range experiments.FigureHosts {
		tr := f4[host]
		if tr.Len() == 0 {
			continue
		}
		ch := newChart(fmt.Sprintf("Figure 4 — 5-minute aggregated availability, %s", host),
			"time (s)", "available fraction",
			tr.At(0).T, tr.At(tr.Len()-1).T, 0, 1)
		ch.polyline(tr.Times(), tr.Values(), "#9467bd", 600)
		data.Charts = append(data.Charts, template.HTML(ch.String()))
	}

	return pageTemplate.Execute(w, data)
}

type pageData struct {
	Title  string
	Tables []htmlTable
	Charts []template.HTML
}

type htmlTable struct {
	Title  string
	Header []string
	Rows   [][]string
}

func htmlErrorTable(t *experiments.ErrorTable) htmlTable {
	out := htmlTable{
		Title:  t.Title,
		Header: []string{"Host", "Load Average", "vmstat", "NWS Hybrid"},
	}
	cell := func(host, method string) string {
		v := fmt.Sprintf("%.1f%%", t.Main[host].Get(method)*100)
		if t.Paren != nil {
			v += fmt.Sprintf(" (%.1f%%)", t.Paren[host].Get(method)*100)
		}
		return v
	}
	for _, host := range t.Hosts {
		out.Rows = append(out.Rows, []string{
			host,
			cell(host, core.MethodLoadAvg),
			cell(host, core.MethodVmstat),
			cell(host, core.MethodHybrid),
		})
	}
	return out
}

func htmlTable4(rows []experiments.Table4Row) htmlTable {
	out := htmlTable{
		Title: "Table 4: Hurst estimate; variance of original series and 5-minute averages",
		Header: []string{"Host", "H", "Load Avg (orig/300s)",
			"vmstat (orig/300s)", "Hybrid (orig/300s)"},
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, []string{
			r.Host,
			fmt.Sprintf("%.2f", r.Hurst),
			fmt.Sprintf("%.4f / %.4f", r.Orig.LoadAvg, r.Agg.LoadAvg),
			fmt.Sprintf("%.4f / %.4f", r.Orig.Vmstat, r.Agg.Vmstat),
			fmt.Sprintf("%.4f / %.4f", r.Orig.Hybrid, r.Agg.Hybrid),
		})
	}
	return out
}

var pageTemplate = template.Must(template.New("report").Parse(strings.TrimSpace(`
<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
 body { font-family: Georgia, serif; max-width: 820px; margin: 2em auto; color: #222; }
 h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
 table { border-collapse: collapse; margin: 0.8em 0; font-size: 0.92em; }
 th, td { border: 1px solid #bbb; padding: 4px 10px; text-align: left; }
 th { background: #f0f0f0; }
 svg { margin: 0.8em 0; border: 1px solid #eee; }
 p.note { color: #555; font-size: 0.9em; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="note">Wolski, Spring &amp; Hayes, HPDC 1999 — regenerated from the
simulated testbed (see DESIGN.md for substitutions and EXPERIMENTS.md for
paper-vs-measured commentary).</p>
{{range .Tables}}
<h2>{{.Title}}</h2>
<table>
<tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}
</table>
{{end}}
{{range .Charts}}
{{.}}
{{end}}
</body>
</html>
`)))
