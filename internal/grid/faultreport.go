package grid

import (
	"encoding/json"
	"fmt"
	"io"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/report"
)

// FaultSchemaVersion identifies the fault-campaign JSON report layout. Bump
// it on any breaking change to the FaultReport structure.
const FaultSchemaVersion = "nws/fault-report/v1"

// FaultReport is the robustness output of one fault campaign: the seeded
// schedule it ran, both arms' scores, and the invariant verdicts. It is
// built exclusively from slices populated in deterministic order (events in
// schedule order, arms repair-on first, verdicts in a fixed sequence), so
// both emitters are byte-stable for a given configuration.
type FaultReport struct {
	Schema   string            `json:"schema"`
	Seed     int64             `json:"seed"`
	Config   FaultReportConfig `json:"config"`
	Events   []FaultEvent      `json:"events"`
	Arms     []ArmResult       `json:"arms"`
	Verdicts []Verdict         `json:"verdicts"`
}

// FaultReportConfig echoes the campaign parameters into the report, making
// it self-describing and a reproduction recipe.
type FaultReportConfig struct {
	Hosts          int     `json:"hosts"`
	Rounds         int     `json:"rounds"`
	CadenceS       float64 `json:"cadence_s"`
	TickS          float64 `json:"tick_s"`
	Replicas       int     `json:"replicas"`
	Quorum         int     `json:"quorum"`
	BacklogCap     int     `json:"backlog_cap"`
	HintCap        int     `json:"hint_cap"`
	CrashRounds    int     `json:"crash_rounds"`
	RecoveryRounds int     `json:"recovery_rounds"`
}

// ArmResult scores one arm of the campaign (the same schedule with the
// repair plane on or off).
type ArmResult struct {
	Name   string `json:"name"`
	Repair bool   `json:"repair"`

	// LedgerPoints counts distinct quorum-acknowledged measurements (the
	// ground truth); MissingPoints counts ledger entries absent from any
	// replica at the end of the run.
	LedgerPoints    uint64 `json:"ledger_points"`
	MissingPoints   uint64 `json:"missing_points"`
	DivergentSeries int    `json:"divergent_series"`

	// ConvergedRound is the first round after the last replica fault
	// cleared at which all replicas were bit-identical (-1 = never);
	// RoundsToConverge is its distance from the fault clearing.
	ConvergedRound   int `json:"converged_round"`
	RoundsToConverge int `json:"rounds_to_converge"`

	Probes         uint64 `json:"probes"`
	ProbeFailures  uint64 `json:"probe_failures"`
	QuorumFailures uint64 `json:"quorum_failures"`

	Hints                 nwsnet.HintStats `json:"hints"`
	RepairRounds          uint64           `json:"repair_rounds"`
	RepairPointsRecovered uint64           `json:"repair_points_recovered"`
}

// WriteJSON emits the report as indented JSON (schema FaultSchemaVersion).
func (r *FaultReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText emits the human-readable robustness report: the schedule, both
// arms side by side, and the invariant verdicts.
func (r *FaultReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "nwsgrid fault campaign report (%s)\n", r.Schema); err != nil {
		return err
	}
	c := r.Config
	if _, err := fmt.Fprintf(w, "seed %d  hosts %d  rounds %d  replicas %d (quorum %d)  backlog cap %d  hint cap %d\n\n",
		r.Seed, c.Hosts, c.Rounds, c.Replicas, c.Quorum, c.BacklogCap, c.HintCap); err != nil {
		return err
	}

	t := report.NewTable("round", "fault", "target", "rounds")
	for _, ev := range r.Events {
		dur := fmt.Sprintf("%d", ev.Rounds)
		if ev.Kind == FaultSkew {
			dur = "-"
		}
		t.AddRow(fmt.Sprintf("%d", ev.Round), string(ev.Kind), ev.Target, dur)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable("metric", "repair-on", "repair-off")
	row := func(name string, f func(a ArmResult) string) {
		t.AddRow(name, f(r.Arms[0]), f(r.Arms[1]))
	}
	row("ledger points", func(a ArmResult) string { return fmt.Sprintf("%d", a.LedgerPoints) })
	row("missing points", func(a ArmResult) string { return fmt.Sprintf("%d", a.MissingPoints) })
	row("divergent series", func(a ArmResult) string { return fmt.Sprintf("%d", a.DivergentSeries) })
	row("rounds to converge", func(a ArmResult) string { return fmt.Sprintf("%d", a.RoundsToConverge) })
	row("probe failures", func(a ArmResult) string { return fmt.Sprintf("%d/%d", a.ProbeFailures, a.Probes) })
	row("quorum failures", func(a ArmResult) string { return fmt.Sprintf("%d", a.QuorumFailures) })
	row("hints queued/replayed/dropped", func(a ArmResult) string {
		return fmt.Sprintf("%d/%d/%d", a.Hints.Queued, a.Hints.Replayed, a.Hints.Dropped)
	})
	row("repair rounds", func(a ArmResult) string { return fmt.Sprintf("%d", a.RepairRounds) })
	row("repair points recovered", func(a ArmResult) string { return fmt.Sprintf("%d", a.RepairPointsRecovered) })
	if err := t.Render(w); err != nil {
		return err
	}

	if _, err := fmt.Fprintln(w, "invariant verdicts"); err != nil {
		return err
	}
	t = report.NewTable("config", "invariant", "value", "verdict")
	for _, v := range r.Verdicts {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
		}
		t.AddRow(v.Config, v.SLO, fmt.Sprintf("%g", v.Value), verdict)
	}
	return t.Render(w)
}
