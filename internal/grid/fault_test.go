package grid

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

func TestFaultSchedulePropertiesAndDeterminism(t *testing.T) {
	cfg := DefaultFaultConfig().normalize()
	addrs := []string{"mem-0", "mem-1", "mem-2"}
	names := []string{"h0", "h1", "h2", "h3", "h4", "h5"}
	a := faultSchedule(cfg, addrs, names)
	b := faultSchedule(cfg, addrs, names)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}

	kinds := map[FaultKind]int{}
	last := cfg.Rounds - cfg.RecoveryRounds
	prevEnd := 0
	for _, ev := range a {
		kinds[ev.Kind]++
		if ev.Kind == FaultSkew {
			continue
		}
		if ev.Round < prevEnd {
			t.Fatalf("replica faults overlap: %+v starts before round %d", ev, prevEnd)
		}
		prevEnd = ev.Round + ev.Rounds
		if prevEnd > last {
			t.Fatalf("replica fault %+v clears after the recovery window (round %d)", ev, last)
		}
	}
	for _, k := range []FaultKind{FaultCrash, FaultStall, FaultPartition, FaultSkew} {
		if kinds[k] == 0 {
			t.Fatalf("schedule never injects %s: %v", k, kinds)
		}
	}
	if a[0].Kind != FaultCrash || a[0].Rounds != cfg.CrashRounds {
		t.Fatalf("first event = %+v, want the guaranteed %d-round crash", a[0], cfg.CrashRounds)
	}
	if cfg.CrashRounds != 3*cfg.BacklogCap {
		t.Fatalf("crash outage %d rounds, want 3x the backlog window %d", cfg.CrashRounds, cfg.BacklogCap)
	}
}

// TestFaultCampaignVerdictsPinned pins the campaign's two acceptance
// verdicts: with repair, the replica crashed for three backlog windows
// converges bit-identically within the recovery budget with zero measurement
// loss; without repair, the same seeded schedule reproduces the divergence.
func TestFaultCampaignVerdictsPinned(t *testing.T) {
	rep, err := RunFaultCampaign(DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != FaultSchemaVersion {
		t.Fatalf("schema = %q, want %q", rep.Schema, FaultSchemaVersion)
	}
	if len(rep.Arms) != 2 || rep.Arms[0].Name != "repair-on" || rep.Arms[1].Name != "repair-off" {
		t.Fatalf("arms = %+v, want repair-on then repair-off", rep.Arms)
	}
	on, off := rep.Arms[0], rep.Arms[1]

	if on.MissingPoints != 0 {
		t.Fatalf("repair arm lost %d measurements", on.MissingPoints)
	}
	if on.RoundsToConverge < 0 || on.RoundsToConverge > rep.Config.RecoveryRounds {
		t.Fatalf("repair arm converged in %d rounds, budget %d", on.RoundsToConverge, rep.Config.RecoveryRounds)
	}
	if on.ProbeFailures != 0 || on.QuorumFailures != 0 {
		t.Fatalf("repair arm availability: %d probe failures, %d quorum failures",
			on.ProbeFailures, on.QuorumFailures)
	}
	if on.RepairPointsRecovered == 0 {
		t.Fatal("repair arm recovered nothing — the campaign is not exercising anti-entropy")
	}

	if off.MissingPoints == 0 {
		t.Fatal("repair-off arm did not reproduce the divergence")
	}
	if off.ConvergedRound != -1 {
		t.Fatalf("repair-off arm converged at round %d without a repair plane", off.ConvergedRound)
	}
	// The hint queues are repair-independent writer state: both arms see
	// the identical schedule, so their hint traffic matches exactly.
	if on.Hints != off.Hints {
		t.Fatalf("hint stats differ across arms: %+v vs %+v", on.Hints, off.Hints)
	}
	if on.Hints.Dropped == 0 {
		t.Fatal("no hints dropped — the crash outage fits the hint queue and proves nothing")
	}
	// What anti-entropy recovered is exactly what the bounded hints dropped.
	if on.RepairPointsRecovered != on.Hints.Dropped {
		t.Fatalf("repair recovered %d points, hints dropped %d — unexplained delta",
			on.RepairPointsRecovered, on.Hints.Dropped)
	}
	if off.MissingPoints != off.Hints.Dropped {
		t.Fatalf("repair-off missing %d points, hints dropped %d — loss beyond the dropped hints",
			off.MissingPoints, off.Hints.Dropped)
	}

	for _, v := range rep.Verdicts {
		if !v.Pass {
			t.Errorf("verdict %s (%s) failed: value %g", v.Config, v.SLO, v.Value)
		}
	}
	wantVerdicts := []string{
		"repair-on/zero-loss", "repair-on/convergence", "repair-on/availability",
		"repair-on/quorum", "repair-off/divergence-reproduced",
	}
	if len(rep.Verdicts) != len(wantVerdicts) {
		t.Fatalf("verdict count = %d, want %d", len(rep.Verdicts), len(wantVerdicts))
	}
	for i, want := range wantVerdicts {
		if rep.Verdicts[i].Config != want {
			t.Fatalf("verdict[%d] = %q, want %q", i, rep.Verdicts[i].Config, want)
		}
	}
}

func TestFaultCampaignByteIdentical(t *testing.T) {
	cfg := DefaultFaultConfig()
	emit := func() (string, string) {
		rep, err := RunFaultCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var j, x bytes.Buffer
		if err := rep.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteText(&x); err != nil {
			t.Fatal(err)
		}
		return j.String(), x.String()
	}
	j1, x1 := emit()
	j2, x2 := emit()
	if j1 != j2 {
		t.Fatal("same config produced different JSON fault reports")
	}
	if x1 != x2 {
		t.Fatal("same config produced different text fault reports")
	}

	// A different seed reshuffles the schedule but the invariants hold.
	cfg2 := cfg
	cfg2.Seed = 7
	rep2, err := RunFaultCampaign(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep2.Verdicts {
		if !v.Pass {
			t.Errorf("seed 7 verdict %s failed: value %g", v.Config, v.Value)
		}
	}
	var j3 bytes.Buffer
	if err := rep2.WriteJSON(&j3); err != nil {
		t.Fatal(err)
	}
	if j3.String() == j1 {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestFaultReportTextMentionsEveryArm(t *testing.T) {
	rep, err := RunFaultCampaign(DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		FaultSchemaVersion, "repair-on", "repair-off", "invariant verdicts",
		string(FaultCrash), string(FaultSkew),
		fmt.Sprintf("backlog cap %d", rep.Config.BacklogCap),
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("text report missing %q", want)
		}
	}
}
