package grid

import "math"

// The serving-plane capacity model. The harness's hosts all take their
// measurement at the same cadence boundary — the worst case for the store
// plane — so offered load arrives as one batch of B sub-operations per
// cadence interval, drained FIFO at the modelled service rate. The model
// is evaluated in closed form, not by per-operation event simulation: the
// i-th operation of the batch in interval r completes (Q_r + i)/mu seconds
// after the interval starts (Q_r is the backlog carried into the interval),
// so each interval contributes a uniform grid of latencies and quantiles
// reduce to a rank count plus a bisection. That keeps a 512x overload of a
// thousand-host fleet exact and O(intervals * log) instead of O(millions of
// ops), and — being straight-line float arithmetic — byte-deterministic.

// serveModelIntervals is the model horizon in cadence intervals: long
// enough that an overloaded configuration's linear backlog growth dominates
// its quantiles, short enough to stay exact in closed form.
const serveModelIntervals = 20

// ServePoint is the serving-plane evaluation at one load factor.
type ServePoint struct {
	Factor           float64 `json:"factor"`
	OfferedOpsPerSec float64 `json:"offered_ops_per_sec"`
	Utilization      float64 `json:"utilization"`
	P50Ms            float64 `json:"p50_ms"`
	P90Ms            float64 `json:"p90_ms"`
	P99Ms            float64 `json:"p99_ms"`
}

// simulateServe evaluates the batch-drain FIFO model: opsPerRound measured
// sub-operations per cadence interval, scaled by factor, served at
// serveRate, over the given horizon.
func simulateServe(opsPerRound, cadence, factor, serveRate float64, intervals int) ServePoint {
	b := math.Round(opsPerRound * factor)
	sp := ServePoint{
		Factor:           factor,
		OfferedOpsPerSec: b / cadence,
		Utilization:      b / (serveRate * cadence),
	}
	if b < 1 {
		return sp
	}
	// Backlog carried into each interval: drain what the interval's budget
	// allows, keep the rest.
	drain := serveRate * cadence
	backlogs := make([]float64, intervals)
	q := 0.0
	for r := range backlogs {
		backlogs[r] = q
		q = math.Max(0, q+b-drain)
	}
	// countLE(x) = how many operations across the horizon finish within x
	// seconds of their arrival: per interval, those with index
	// i <= mu*x - Q_r, clamped to the batch.
	countLE := func(x float64) float64 {
		total := 0.0
		for _, q := range backlogs {
			c := math.Floor(serveRate*x - q)
			if c < 0 {
				c = 0
			} else if c > b {
				c = b
			}
			total += c
		}
		return total
	}
	quantile := func(p float64) float64 {
		rank := math.Ceil(p * b * float64(intervals))
		if rank < 1 {
			rank = 1
		}
		lo, hi := 0.0, (backlogs[intervals-1]+b)/serveRate
		for iter := 0; iter < 80; iter++ {
			mid := (lo + hi) / 2
			if countLE(mid) >= rank {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}
	sp.P50Ms = quantile(0.50) * 1000
	sp.P90Ms = quantile(0.90) * 1000
	sp.P99Ms = quantile(0.99) * 1000
	return sp
}
