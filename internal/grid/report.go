package grid

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nwscpu/internal/report"
)

// SchemaVersion identifies the JSON report layout. Bump it on any breaking
// change to the Report structure; consumers (BENCH_grid.json readers,
// dashboards) dispatch on it.
const SchemaVersion = "nws/grid-report/v1"

// Report is the capacity-planning output of one harness run. It is built
// exclusively from slices populated in deterministic order (scenarios in
// catalog order, members sorted, serving points in load-factor order,
// verdicts serving-then-forecast), so both emitters are byte-stable for a
// given seed and configuration.
type Report struct {
	Schema    string           `json:"schema"`
	Seed      int64            `json:"seed"`
	Config    ReportConfig     `json:"config"`
	Totals    Totals           `json:"totals"`
	Scenarios []ScenarioResult `json:"scenarios"`
	Serving   []ServePoint     `json:"serving"`
	Verdicts  []Verdict        `json:"verdicts"`
}

// ReportConfig echoes the run parameters into the report, making an emitted
// report self-describing (and a reproduction recipe: feed them back to
// cmd/nwsgrid and the bytes come back).
type ReportConfig struct {
	Hosts        int       `json:"hosts"`
	DurationS    float64   `json:"duration_s"`
	CadenceS     float64   `json:"cadence_s"`
	TickS        float64   `json:"tick_s"`
	ServeRateOps float64   `json:"serve_rate_ops_per_sec"`
	LoadFactors  []float64 `json:"load_factors"`
	SubEvery     int       `json:"subscribe_every"`
	QueryEvery   int       `json:"query_every"`
	SLO          SLO       `json:"slo"`
}

// Totals are the whole-run serving-plane counts.
type Totals struct {
	Rounds             int     `json:"rounds"`
	Series             int     `json:"series"`
	PointsStored       uint64  `json:"points_stored"`
	MemoryOps          uint64  `json:"memory_ops"`
	OpsPerRound        float64 `json:"ops_per_round"`
	Queries            uint64  `json:"forecast_queries"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	CacheInvalidations uint64  `json:"cache_invalidations"`
	Subscriptions      int     `json:"subscriptions"`
	Pushes             uint64  `json:"pushes"`
}

// ScenarioResult is one scenario's forecast-accuracy table: the mean error
// of every bank member across the scenario's hosts (the paper's Tables 2
// and 3, at fleet scale), plus the dynamically selected engine's error.
type ScenarioResult struct {
	Name      string        `json:"name"`
	Desc      string        `json:"desc"`
	Hosts     int           `json:"hosts"`
	MeanAvail float64       `json:"mean_availability"`
	EngineMAE float64       `json:"engine_mae"`
	EngineMSE float64       `json:"engine_mse"`
	Members   []MemberError `json:"members"`
}

// MemberError is one forecaster's mean error over a scenario's hosts.
type MemberError struct {
	Name string  `json:"name"`
	MAE  float64 `json:"mae"`
	MSE  float64 `json:"mse"`
}

// Verdict is one "config X meets SLO Y" judgement.
type Verdict struct {
	Config string  `json:"config"`
	SLO    string  `json:"slo"`
	Value  float64 `json:"value"`
	Target float64 `json:"target"`
	Pass   bool    `json:"pass"`
}

// sortedMemberNames returns the aggregation map's keys sorted — member
// tables must never inherit map-iteration order.
func sortedMemberNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// sortMembers orders a scenario table by ascending MAE (best forecaster
// first, as the paper's tables read), name-tiebroken for determinism.
func sortMembers(ms []MemberError) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].MAE != ms[j].MAE {
			return ms[i].MAE < ms[j].MAE
		}
		return ms[i].Name < ms[j].Name
	})
}

// WriteJSON emits the report as indented JSON (schema SchemaVersion).
// encoding/json marshals structs in field order and the report holds no
// maps, so the bytes are deterministic.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteText emits the human-readable capacity report: run summary,
// per-scenario forecast-error tables, serving-plane latency versus load,
// and the SLO verdicts.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "nwsgrid capacity report (%s)\n", r.Schema); err != nil {
		return err
	}
	c := r.Config
	if _, err := fmt.Fprintf(w, "seed %d  hosts %d  duration %gs  cadence %gs  rounds %d\n\n",
		r.Seed, c.Hosts, c.DurationS, c.CadenceS, r.Totals.Rounds); err != nil {
		return err
	}

	t := report.NewTable("total", "value")
	tt := r.Totals
	t.AddRow("series", fmt.Sprintf("%d", tt.Series))
	t.AddRow("points stored", fmt.Sprintf("%d", tt.PointsStored))
	t.AddRow("memory ops", fmt.Sprintf("%d", tt.MemoryOps))
	t.AddRow("ops/round", fmt.Sprintf("%.1f", tt.OpsPerRound))
	t.AddRow("forecast queries", fmt.Sprintf("%d", tt.Queries))
	t.AddRow("cache hits", fmt.Sprintf("%d", tt.CacheHits))
	t.AddRow("cache misses", fmt.Sprintf("%d", tt.CacheMisses))
	t.AddRow("cache invalidations", fmt.Sprintf("%d", tt.CacheInvalidations))
	t.AddRow("subscriptions", fmt.Sprintf("%d", tt.Subscriptions))
	t.AddRow("pushes delivered", fmt.Sprintf("%d", tt.Pushes))
	if err := t.Render(w); err != nil {
		return err
	}

	for _, sc := range r.Scenarios {
		if _, err := fmt.Fprintf(w, "scenario %s — %s (%d hosts, mean availability %.4f)\n",
			sc.Name, sc.Desc, sc.Hosts, sc.MeanAvail); err != nil {
			return err
		}
		t := report.NewTable("forecaster", "MAE", "MSE")
		t.AddRow("[dynamic engine]", fmt.Sprintf("%.4f", sc.EngineMAE), fmt.Sprintf("%.5f", sc.EngineMSE))
		for _, m := range sc.Members {
			t.AddRow(m.Name, fmt.Sprintf("%.4f", m.MAE), fmt.Sprintf("%.5f", m.MSE))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "serving plane (batch-drain FIFO model, %g ops/s capacity)\n",
		c.ServeRateOps); err != nil {
		return err
	}
	t = report.NewTable("load", "offered ops/s", "util", "p50 ms", "p90 ms", "p99 ms")
	for _, sp := range r.Serving {
		t.AddRow(
			fmt.Sprintf("%gx", sp.Factor),
			fmt.Sprintf("%.1f", sp.OfferedOpsPerSec),
			fmt.Sprintf("%.3f", sp.Utilization),
			fmt.Sprintf("%.3f", sp.P50Ms),
			fmt.Sprintf("%.3f", sp.P90Ms),
			fmt.Sprintf("%.3f", sp.P99Ms),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	if _, err := fmt.Fprintln(w, "SLO verdicts"); err != nil {
		return err
	}
	t = report.NewTable("config", "slo", "value", "target", "verdict")
	for _, v := range r.Verdicts {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
		}
		t.AddRow(v.Config, v.SLO, fmt.Sprintf("%.4f", v.Value), fmt.Sprintf("%.4f", v.Target), verdict)
	}
	return t.Render(w)
}
