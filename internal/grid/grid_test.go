package grid

import (
	"bytes"
	"testing"
)

// testConfig is small enough to run under -race in CI but still covers
// every scenario (14 hosts = 2 per catalog entry).
func testConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Hosts = 14
	cfg.Duration = 100
	return cfg
}

func render(t *testing.T, r *Report) (text, js []byte) {
	t.Helper()
	var tb, jb bytes.Buffer
	if err := r.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

// TestRunSameSeedByteIdentical is the harness's core guarantee: two runs
// with the same seed and configuration produce byte-identical text and
// JSON reports — across GOMAXPROCS, worker counts, and map iteration — and
// a different seed produces a different report.
func TestRunSameSeedByteIdentical(t *testing.T) {
	cfgA := testConfig(7)
	r1, err := Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := testConfig(7)
	cfgB.Workers = 1 // parallelism must not leak into the report
	r2, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t1, j1 := render(t, r1)
	t2, j2 := render(t, r2)
	if !bytes.Equal(t1, t2) {
		t.Fatalf("same seed produced different text reports:\n--- run1 ---\n%s\n--- run2 ---\n%s", t1, t2)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same seed produced different JSON reports")
	}

	r3, err := Run(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	t3, _ := render(t, r3)
	if bytes.Equal(t1, t3) {
		t.Fatalf("different seeds produced identical reports")
	}
}

// TestReportShape pins the report invariants the emitters and consumers
// rely on: scenarios in catalog order with every regime populated, sorted
// member tables, one serving point per load factor, one verdict per factor
// plus one per scenario, and consistent totals.
func TestReportShape(t *testing.T) {
	cfg := testConfig(3)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaVersion {
		t.Fatalf("schema %q, want %q", r.Schema, SchemaVersion)
	}
	names := ScenarioNames()
	if len(r.Scenarios) != len(names) {
		t.Fatalf("%d scenarios, want %d", len(r.Scenarios), len(names))
	}
	for i, sc := range r.Scenarios {
		if sc.Name != names[i] {
			t.Fatalf("scenario %d = %q, want %q", i, sc.Name, names[i])
		}
		if sc.Hosts == 0 {
			t.Fatalf("scenario %q got no hosts", sc.Name)
		}
		if len(sc.Members) == 0 {
			t.Fatalf("scenario %q has an empty member table", sc.Name)
		}
		for j := 1; j < len(sc.Members); j++ {
			a, b := sc.Members[j-1], sc.Members[j]
			if a.MAE > b.MAE || (a.MAE == b.MAE && a.Name >= b.Name) {
				t.Fatalf("scenario %q members not sorted at %d: %+v %+v", sc.Name, j, a, b)
			}
		}
		if sc.MeanAvail < 0 || sc.MeanAvail > 1 {
			t.Fatalf("scenario %q mean availability %v out of range", sc.Name, sc.MeanAvail)
		}
	}
	if len(r.Serving) != len(cfg.LoadFactors) {
		t.Fatalf("%d serving points, want %d", len(r.Serving), len(cfg.LoadFactors))
	}
	if want := len(cfg.LoadFactors) + len(names); len(r.Verdicts) != want {
		t.Fatalf("%d verdicts, want %d", len(r.Verdicts), want)
	}
	rounds := r.Totals.Rounds
	if got, want := r.Totals.PointsStored, uint64(3*cfg.Hosts*rounds); got != want {
		t.Fatalf("points stored %d, want %d", got, want)
	}
	if got, want := r.Totals.Subscriptions, (cfg.Hosts+cfg.SubEvery-1)/cfg.SubEvery; got != want {
		t.Fatalf("subscriptions %d, want %d", got, want)
	}
	if r.Totals.Pushes == 0 || r.Totals.CacheHits == 0 {
		t.Fatalf("read plane looks dead: %+v", r.Totals)
	}
}

// TestVerdictsSplitOnServeRate pins the SLO machinery: with a generous
// service rate the smallest factor passes; shrinking the rate to overload
// must flip the largest factor to FAIL (the report always carries at least
// one pass and one fail across its shipped default configs this way).
func TestVerdictsSplitOnServeRate(t *testing.T) {
	cfg := testConfig(5)
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pass, fail bool
	for _, v := range r.Verdicts {
		if v.Pass {
			pass = true
		} else {
			fail = true
		}
	}
	if !pass || !fail {
		t.Fatalf("verdicts not mixed (pass=%v fail=%v): %+v", pass, fail, r.Verdicts)
	}
	first := r.Verdicts[0] // serve@ smallest factor under the default rate
	if !first.Pass {
		t.Fatalf("smallest load factor failed under default serve rate: %+v", first)
	}

	cfg2 := testConfig(5)
	cfg2.ServeRate = 1 // hopeless capacity: every factor overloads
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg2.LoadFactors {
		if v := r2.Verdicts[i]; v.Pass {
			t.Fatalf("serving verdict passed at 1 op/s capacity: %+v", v)
		}
	}
	if r2.Serving[len(r2.Serving)-1].Utilization <= 1 {
		t.Fatalf("overloaded run reports utilization %v <= 1", r2.Serving[len(r2.Serving)-1].Utilization)
	}
}

// TestQueueModel checks the batch-drain FIFO model against hand-computed
// values: a stable batch drains within its interval (p99 ~ batch/rate), an
// overloaded one accumulates backlog across the horizon.
func TestQueueModel(t *testing.T) {
	zero := simulateServe(0, 10, 1, 1000, serveModelIntervals)
	if zero.P99Ms != 0 || zero.Utilization != 0 {
		t.Fatalf("empty load not zero: %+v", zero)
	}

	// 1000 ops burst at 10000 ops/s: latencies are i/mu for i = 1..1000,
	// so p50 ~ 50 ms, p99 ~ 99 ms, and no backlog carries over.
	st := simulateServe(1000, 10, 1, 10000, serveModelIntervals)
	if st.Utilization != 0.01 {
		t.Fatalf("utilization %v, want 0.01", st.Utilization)
	}
	approx := func(got, want float64) bool { return got > want-1 && got < want+1 }
	if !approx(st.P50Ms, 50) || !approx(st.P90Ms, 90) || !approx(st.P99Ms, 99) {
		t.Fatalf("stable quantiles off: %+v", st)
	}
	if !(st.P50Ms < st.P90Ms && st.P90Ms < st.P99Ms) {
		t.Fatalf("quantiles not monotone: %+v", st)
	}

	// Same burst at 50 ops/s: only 500 of 1000 drain per interval, so the
	// backlog grows by 500 each round and late intervals see latencies of
	// many interval lengths.
	ov := simulateServe(1000, 10, 1, 50, serveModelIntervals)
	if ov.Utilization != 2 {
		t.Fatalf("overload utilization %v, want 2", ov.Utilization)
	}
	if ov.P99Ms <= st.P99Ms*10 {
		t.Fatalf("overload p99 %v not catastrophically above stable %v", ov.P99Ms, st.P99Ms)
	}
}

// TestStealAndChaoticScenariosBite ensures the two new regimes actually
// shape the measured series: a steal-scenario host must report lower mean
// availability than the same host without its steal schedule would explain
// away, and the chaotic scenario must not degenerate to a constant.
func TestStealAndChaoticScenariosBite(t *testing.T) {
	r, err := Run(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ScenarioResult{}
	for _, sc := range r.Scenarios {
		byName[sc.Name] = sc
	}
	if sc := byName["steal"]; sc.MeanAvail > 0.97 {
		t.Fatalf("steal scenario mean availability %.4f: the schedule is not biting", sc.MeanAvail)
	}
	if sc := byName["chaotic"]; sc.EngineMAE == 0 {
		t.Fatalf("chaotic scenario produced a perfectly predictable series")
	}
	if sc := byName["nicehog"]; sc.MeanAvail > 0.9 {
		t.Fatalf("nicehog scenario mean availability %.4f: the soaker fixture is missing", sc.MeanAvail)
	}
}
