// Package grid is the deterministic grid-scale scenario harness behind
// cmd/nwsgrid: it simulates a fleet of time-shared Unix hosts (thousands of
// simos instances) under heterogeneous load scenarios, drives the full
// in-process serving stack over them — sensord measurement ticks into a
// sharded, cluster-guarded Memory, a forecaster bank with its forecast
// cache and push subscriptions on top — under a simulated clock, and
// distills the run into a capacity-planning report: per-scenario
// forecast-error tables mirroring the paper's Tables 2 and 3, serving-plane
// latency quantiles versus offered load, and explicit SLO verdicts.
//
// Everything is a pure function of the seed and the configuration: no wall
// clock, no real sockets, no goroutine-order-dependent arithmetic. Host
// simulations run in parallel only where their state is disjoint, and every
// aggregation walks hosts in index order, so the same seed produces the
// same report byte for byte regardless of GOMAXPROCS.
package grid

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"nwscpu/internal/forecast"
	"nwscpu/internal/nwsnet"
	"nwscpu/internal/nwsnet/cluster"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// SLO holds the service-level objectives a run is judged against.
type SLO struct {
	// ServeP99Ms is the serving-plane p99 latency budget in milliseconds;
	// one verdict per load factor.
	ServeP99Ms float64 `json:"serve_p99_ms"`
	// MaxUtil is the serving-plane utilization ceiling (headroom rule):
	// a load factor whose offered rate exceeds this fraction of the
	// service rate fails even if latency is still bounded.
	MaxUtil float64 `json:"max_utilization"`
	// EngineMAE is the forecast-accuracy budget: the scenario-mean MAE of
	// the dynamically selected forecaster (the paper's Eq. 5 error) must
	// stay at or below it.
	EngineMAE float64 `json:"engine_mae"`
}

// Config parameterizes one harness run. The zero value is not runnable;
// start from DefaultConfig or SmokeConfig.
type Config struct {
	Seed     int64
	Hosts    int
	Duration float64 // simulated seconds
	Cadence  float64 // measurement period (the paper uses 10 s)
	Tick     float64 // scheduler quantum of the simulated hosts

	// ServeRate is the modelled serving-plane capacity in memory
	// sub-operations per second, used by the FIFO drain model (queue.go).
	ServeRate float64
	// LoadFactors are the offered-load multipliers the serving plane is
	// evaluated at (1 = the load this run itself generated).
	LoadFactors []float64

	// SubEvery subscribes every Nth host's hybrid series to a push sink
	// (0 disables subscriptions).
	SubEvery int
	// QueryEvery issues a forecast query for every Nth host each round,
	// rotating the residue so all series are queried over time.
	QueryEvery int

	// Workers bounds the host-simulation worker pool; <= 0 selects
	// GOMAXPROCS. It affects wall time only, never the report.
	Workers int

	SLO SLO
}

// DefaultConfig is the shipped grid-scale configuration: a thousand hosts
// for fifteen simulated minutes.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Hosts:       1000,
		Duration:    900,
		Cadence:     10,
		Tick:        0.01,
		ServeRate:   250000,
		LoadFactors: []float64{1, 8, 64, 512},
		SubEvery:    4,
		QueryEvery:  10,
		SLO:         SLO{ServeP99Ms: 50, MaxUtil: 0.9, EngineMAE: 0.08},
	}
}

// SmokeConfig is the small CI-sized configuration (make grid-smoke): every
// scenario still gets hosts, but the run finishes in seconds under -race.
func SmokeConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 48
	cfg.Duration = 300
	return cfg
}

func (cfg Config) normalize() Config {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1000
	}
	if cfg.Cadence < 2 {
		// The hybrid probe advances the host clock by its probe length
		// (1.5 s) on probe rounds; the cadence must dominate that.
		cfg.Cadence = 2
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 0.01
	}
	if cfg.Duration < 2*cfg.Cadence {
		cfg.Duration = 2 * cfg.Cadence
	}
	if cfg.ServeRate <= 0 {
		cfg.ServeRate = 250000
	}
	if len(cfg.LoadFactors) == 0 {
		cfg.LoadFactors = []float64{1, 8, 64, 512}
	}
	if cfg.SubEvery < 0 {
		cfg.SubEvery = 0
	}
	if cfg.QueryEvery <= 0 {
		cfg.QueryEvery = 10
	}
	if cfg.SLO.ServeP99Ms <= 0 {
		cfg.SLO.ServeP99Ms = 50
	}
	if cfg.SLO.MaxUtil <= 0 {
		cfg.SLO.MaxUtil = 0.9
	}
	if cfg.SLO.EngineMAE <= 0 {
		cfg.SLO.EngineMAE = 0.08
	}
	return cfg
}

// --- deterministic per-host randomness ---

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hostBits derives an independent 64-bit lane for host i from the run seed.
func hostBits(seed int64, i int, lane uint64) uint64 {
	return splitmix64(uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(i)*0xBF58476D1CE4E5B9 ^ lane*0x94D049BB133111EB)
}

// hostFrac is hostBits mapped into [0, 1).
func hostFrac(seed int64, i int, lane uint64) float64 {
	return float64(hostBits(seed, i, lane)>>11) / (1 << 53)
}

// jitter spreads a base rate across the fleet: [0.7, 1.3) of the original.
func jitter(u float64) float64 { return 0.7 + 0.6*u }

// --- scenario catalog ---

// scenario is one load regime in the catalog. build derives a host's
// workload profile (and optionally a hypervisor steal schedule) from the
// run duration and four per-host uniforms.
type scenario struct {
	name  string
	desc  string
	build func(d, cadence float64, u [4]float64) (workload.Profile, func(t float64) float64)
}

// stealSchedule is a square-wave noisy neighbor: a co-resident guest takes
// `level` of every quantum for the first `duty` of each 300-second window,
// and a small virtualization overhead remains in between.
func stealSchedule(u0, u1 float64) func(t float64) float64 {
	level := 0.2 + 0.3*u0
	duty := 0.3 + 0.4*u1
	return func(t float64) float64 {
		if math.Mod(t, 300) < duty*300 {
			return level
		}
		return 0.03
	}
}

// catalog returns the scenario set in report order. Hosts are assigned
// round-robin, so any fleet of at least len(catalog) hosts exercises every
// regime.
func catalog() []scenario {
	return []scenario{
		{
			name: "diurnal",
			desc: "interactive workstations under a daily cycle",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Thing1()
				p.JobRate *= jitter(u[0])
				p.SessionRate *= jitter(u[1])
				return p, nil
			},
		},
		{
			name: "flashcrowd",
			desc: "quiet hosts hit by a mid-run arrival surge",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Thing1()
				p.DailyAmp = 0.3
				p.JobRate *= jitter(u[0])
				p.SessionRate *= jitter(u[1])
				p.FlashStart = d * (0.3 + 0.2*u[2])
				p.FlashLen = d * 0.25
				p.FlashMult = 6
				return p, nil
			},
		},
		{
			name: "batchstorm",
			desc: "compute servers draining an ON/OFF batch queue",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Beowulf()
				p.JobRate *= jitter(u[0])
				p.StormPeriod = d / 4
				p.StormDuty = 0.3
				p.StormMult = 5
				return p, nil
			},
		},
		{
			name: "nicehog",
			desc: "nice-19 background soakers (the conundrum anomaly) fleet-wide",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Conundrum(d + 60)
				p.JobRate *= jitter(u[0])
				return p, nil
			},
		},
		{
			name: "longrunner",
			desc: "servers held by one full-priority job (the kongo anomaly)",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Kongo(d + 60)
				p.JobRate *= jitter(u[0])
				return p, nil
			},
		},
		{
			name: "steal",
			desc: "virtualized hosts losing quanta to a noisy neighbor",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Gremlin()
				p.JobRate *= jitter(u[0])
				return p, stealSchedule(u[2], u[3])
			},
		},
		{
			name: "chaotic",
			desc: "logistic-map modulated load (deterministic, non-periodic)",
			build: func(d, cadence float64, u [4]float64) (workload.Profile, func(float64) float64) {
				p := workload.Thing2()
				p.DailyCycle = false
				p.JobRate *= 2 * jitter(u[0])
				p.SessionRate *= jitter(u[1])
				p.ChaosAmp = 0.8
				p.ChaosStep = 2 * cadence
				return p, nil
			},
		},
	}
}

// ScenarioNames lists the catalog in report order.
func ScenarioNames() []string {
	cat := catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.name
	}
	return names
}

// --- serving-plane instrumentation ---

// countingHandler counts the memory sub-operations the run actually issues
// (a batch envelope counts as its sub-requests); the serving-plane model
// scales this measured per-round demand by the configured load factors.
type countingHandler struct {
	inner nwsnet.Handler
	ops   atomic.Uint64
}

func (c *countingHandler) Handle(req nwsnet.Request) nwsnet.Response {
	if req.Op == nwsnet.OpBatch {
		c.ops.Add(uint64(len(req.Batch)))
	} else {
		c.ops.Add(1)
	}
	return c.inner.Handle(req)
}

// countSink is the harness's push subscriber: it only counts deliveries.
type countSink struct{ pushes atomic.Uint64 }

func (s *countSink) Push(id uint64, resp nwsnet.Response) error {
	s.pushes.Add(1)
	return nil
}

// --- the runner ---

type hostSim struct {
	name     string
	scenIdx  int
	host     *simos.Host
	daemon   *nwsnet.SensorDaemon
	series   string // the host's nws_hybrid series key
	buildErr error
}

// forEachHost runs fn(i) for every host index on a bounded worker pool.
// fn must only touch state owned by host i (plus internally synchronized
// shared services); aggregation happens serially afterwards.
func forEachHost(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Run executes the harness and returns the capacity report. The report is a
// pure function of cfg: running twice with equal configs yields identical
// reports (see TestRunSameSeedByteIdentical).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.normalize()
	rounds := int(math.Round(cfg.Duration / cfg.Cadence))
	if rounds < 2 {
		rounds = 2
	}
	cfg.Duration = float64(rounds) * cfg.Cadence
	cat := catalog()
	n := cfg.Hosts

	// The store plane: a sharded Memory behind a single-member cluster
	// guard (the ownership check every partitioned deployment pays on its
	// hot path), with the harness's op counter in front.
	mem := nwsnet.NewMemory(0)
	node := nwsnet.NewClusterNode("grid-mem", mem)
	node.AdoptView(cluster.View{
		Epoch:   1,
		Config:  cluster.Config{Replication: 1, VNodes: 16, Seed: 1},
		Members: []cluster.Member{{ID: "grid-mem", Kind: string(nwsnet.KindMemory), Addr: "grid:0", State: cluster.StateActive}},
	})
	counted := &countingHandler{inner: node}
	backend := nwsnet.NewLocalBackend(counted)

	fc := nwsnet.NewForecasterServiceBackend(backend, 0)
	fc.SetCacheServing(true)
	sink := &countSink{}

	// Build the fleet: profile generation is the expensive part, so it runs
	// on the pool; each host's stream depends only on the seed and its
	// index.
	sims := make([]*hostSim, n)
	scenCount := make([]int, len(cat))
	for i := 0; i < n; i++ {
		si := i % len(cat)
		sims[i] = &hostSim{
			scenIdx: si,
			name:    fmt.Sprintf("%s-%04d", cat[si].name, scenCount[si]),
		}
		scenCount[si]++
	}
	forEachHost(n, cfg.Workers, func(i int) {
		s := sims[i]
		u := [4]float64{
			hostFrac(cfg.Seed, i, 0), hostFrac(cfg.Seed, i, 1),
			hostFrac(cfg.Seed, i, 2), hostFrac(cfg.Seed, i, 3),
		}
		profile, steal := cat[s.scenIdx].build(cfg.Duration, cfg.Cadence, u)
		profile.Name = s.name
		profile.Seed = int64(hostBits(cfg.Seed, i, 4))
		simCfg := simos.DefaultConfig()
		simCfg.Tick = cfg.Tick
		h := simos.New(simCfg)
		if steal != nil {
			h.SetSteal(steal)
		}
		// Generate past the end of the run: the last round still admits
		// arrivals, and fixtures must outlive the horizon.
		workload.Submit(h, profile.Generate(cfg.Duration+cfg.Cadence))
		s.host = h
		s.daemon = nwsnet.NewSensorDaemonBackend(s.name, sensors.SimHost{H: h}, backend, sensors.DefaultHybridConfig())
		s.series = nwsnet.SeriesKey(s.name, "nws_hybrid")
	})

	// The measurement loop: each round advances every host to the round
	// boundary and takes one measurement (parallel; hosts are disjoint and
	// the store plane is internally synchronized), then the serial read
	// plane runs — one refresh pass (cache + pushes) and a rotating slice
	// of forecast queries.
	stepErrs := make([]error, n)
	var queries uint64
	for r := 1; r <= rounds; r++ {
		target := float64(r) * cfg.Cadence
		forEachHost(n, cfg.Workers, func(i int) {
			sims[i].host.RunUntil(target)
			if err := sims[i].daemon.Step(); err != nil && stepErrs[i] == nil {
				stepErrs[i] = err
			}
		})
		for i, err := range stepErrs {
			if err != nil {
				return nil, fmt.Errorf("grid: round %d: host %s: %w", r, sims[i].name, err)
			}
		}
		if r == 1 && cfg.SubEvery > 0 {
			for i := 0; i < n; i += cfg.SubEvery {
				fc.Subscribe(nwsnet.Request{Op: nwsnet.OpSubscribe, Series: sims[i].series}, uint64(i), sink)
			}
		}
		fc.RefreshNow()
		for i := r % cfg.QueryEvery; i < n; i += cfg.QueryEvery {
			if resp := fc.Handle(nwsnet.Request{Op: nwsnet.OpForecast, Series: sims[i].series}); resp.Error != "" {
				return nil, fmt.Errorf("grid: round %d: forecast %s: %s", r, sims[i].series, resp.Error)
			}
			queries++
		}
	}

	// Score the run: replay every host's hybrid series through a fresh
	// forecaster bank (parallel), then aggregate per scenario in host index
	// order so float accumulation is deterministic.
	type hostEval struct {
		meanAvail float64
		engine    forecast.EvalResult
		members   []forecast.MethodError
		err       error
	}
	evals := make([]*hostEval, n)
	forEachHost(n, cfg.Workers, func(i int) {
		ev := &hostEval{}
		evals[i] = ev
		resp := mem.Handle(nwsnet.Request{Op: nwsnet.OpFetch, Series: sims[i].series})
		if resp.Error != "" {
			ev.err = fmt.Errorf("fetch %s: %s", sims[i].series, resp.Error)
			return
		}
		values := make([]float64, len(resp.Points))
		sum := 0.0
		for j, tv := range resp.Points {
			values[j] = tv[1]
			sum += tv[1]
		}
		ev.meanAvail = sum / float64(len(values))
		ev.engine, ev.members, ev.err = forecast.EvaluateEngine(forecast.NewDefaultEngine, values)
	})

	type memberAgg struct {
		sumMAE, sumMSE float64
		n              int
	}
	type scenAgg struct {
		hosts          int
		sumAvail       float64
		sumMAE, sumMSE float64
		members        map[string]*memberAgg
	}
	aggs := make([]*scenAgg, len(cat))
	for i := range aggs {
		aggs[i] = &scenAgg{members: make(map[string]*memberAgg)}
	}
	for i, ev := range evals {
		if ev.err != nil {
			return nil, fmt.Errorf("grid: evaluate %s: %w", sims[i].name, ev.err)
		}
		a := aggs[sims[i].scenIdx]
		a.hosts++
		a.sumAvail += ev.meanAvail
		a.sumMAE += ev.engine.MAE
		a.sumMSE += ev.engine.RMSE * ev.engine.RMSE
		for _, m := range ev.members {
			if m.N == 0 || math.IsInf(m.MAE, 1) {
				continue
			}
			ma := a.members[m.Name]
			if ma == nil {
				ma = &memberAgg{}
				a.members[m.Name] = ma
			}
			ma.sumMAE += m.MAE
			ma.sumMSE += m.MSE
			ma.n++
		}
	}

	report := &Report{
		Schema: SchemaVersion,
		Seed:   cfg.Seed,
		Config: ReportConfig{
			Hosts: n, DurationS: cfg.Duration, CadenceS: cfg.Cadence, TickS: cfg.Tick,
			ServeRateOps: cfg.ServeRate, LoadFactors: cfg.LoadFactors,
			SubEvery: cfg.SubEvery, QueryEvery: cfg.QueryEvery, SLO: cfg.SLO,
		},
	}
	hits, misses, invals := fc.CacheStats()
	totalOps := counted.ops.Load()
	opsPerRound := float64(totalOps) / float64(rounds)
	report.Totals = Totals{
		Rounds:             rounds,
		Series:             3 * n,
		PointsStored:       uint64(3 * n * rounds),
		MemoryOps:          totalOps,
		OpsPerRound:        opsPerRound,
		Queries:            queries,
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheInvalidations: invals,
		Subscriptions:      fc.Subscriptions(),
		Pushes:             sink.pushes.Load(),
	}

	for si, sc := range cat {
		a := aggs[si]
		res := ScenarioResult{Name: sc.name, Desc: sc.desc, Hosts: a.hosts}
		if a.hosts > 0 {
			res.MeanAvail = a.sumAvail / float64(a.hosts)
			res.EngineMAE = a.sumMAE / float64(a.hosts)
			res.EngineMSE = a.sumMSE / float64(a.hosts)
			for _, name := range sortedMemberNames(a.members) {
				ma := a.members[name]
				res.Members = append(res.Members, MemberError{
					Name: name,
					MAE:  ma.sumMAE / float64(ma.n),
					MSE:  ma.sumMSE / float64(ma.n),
				})
			}
			sortMembers(res.Members)
		}
		report.Scenarios = append(report.Scenarios, res)
	}

	for _, factor := range cfg.LoadFactors {
		report.Serving = append(report.Serving,
			simulateServe(opsPerRound, cfg.Cadence, factor, cfg.ServeRate, serveModelIntervals))
	}

	for _, sp := range report.Serving {
		pass := sp.P99Ms <= cfg.SLO.ServeP99Ms && sp.Utilization <= cfg.SLO.MaxUtil
		report.Verdicts = append(report.Verdicts, Verdict{
			Config: fmt.Sprintf("serve@%gx", sp.Factor),
			SLO:    fmt.Sprintf("p99<=%gms,util<=%.2f", cfg.SLO.ServeP99Ms, cfg.SLO.MaxUtil),
			Value:  sp.P99Ms,
			Target: cfg.SLO.ServeP99Ms,
			Pass:   pass,
		})
	}
	for _, sr := range report.Scenarios {
		report.Verdicts = append(report.Verdicts, Verdict{
			Config: "forecast@" + sr.Name,
			SLO:    fmt.Sprintf("engine_mae<=%.3f", cfg.SLO.EngineMAE),
			Value:  sr.EngineMAE,
			Target: cfg.SLO.EngineMAE,
			Pass:   sr.EngineMAE <= cfg.SLO.EngineMAE,
		})
	}
	return report, nil
}
