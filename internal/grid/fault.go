package grid

import (
	"context"
	"fmt"
	"sort"

	"nwscpu/internal/nwsnet"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// The fault campaign drives the production replication stack — ReplicaGroup
// (quorum writes, hinted handoff), Repairer (anti-entropy), Memory — over an
// in-process LocalTransport while a seeded schedule injects faults:
//
//	crash      a replica goes down for several times the writer's backlog
//	           window, then restarts over its durable store — the outage
//	           only the repair plane can heal
//	stall      a short replica outage, inside the hint queue's capacity
//	partition  an asymmetric split: writes to the replica apply but the
//	           responses are lost (the chaos proxy's partition fault,
//	           in-process), exercising applied-but-unacked redelivery
//	skew       a sensor host's clock jumps forward and stays skewed — its
//	           measurements run ahead of the fleet but must never be lost
//
// Every run executes the same schedule twice — once with anti-entropy
// repairers beside each replica, once without — and scores both arms against
// the campaign invariants (zero measurement loss, replicas bit-identical
// within a bounded number of rounds of the last fault clearing, zero read
// unavailability, and, for the repair-off arm, that the divergence the
// repair plane exists for actually shows up). Everything is a pure function
// of the configuration: same seed, same report, byte for byte.

// FaultKind names one injectable fault in a campaign schedule.
type FaultKind string

// The campaign's fault kinds.
const (
	FaultCrash     FaultKind = "crash"
	FaultStall     FaultKind = "stall"
	FaultPartition FaultKind = "partition"
	FaultSkew      FaultKind = "skew"
)

// FaultEvent is one scheduled fault: Kind hits Target starting at Round and
// clears Rounds rounds later (skew never clears; its Rounds is 0).
type FaultEvent struct {
	Round  int       `json:"round"`
	Kind   FaultKind `json:"kind"`
	Target string    `json:"target"`
	Rounds int       `json:"rounds"`
}

// FaultConfig parameterizes one fault campaign. The zero value is not
// runnable; start from DefaultFaultConfig.
type FaultConfig struct {
	Seed    int64
	Hosts   int
	Rounds  int
	Cadence float64
	Tick    float64

	Replicas int // memory replica count
	Quorum   int // write quorum (0 = majority)

	// BacklogCap bounds each sensor daemon's store-and-forward backlog —
	// the campaign keeps it small so a crash outage of CrashRounds
	// demonstrably outlasts everything the writer can replay.
	BacklogCap int
	// HintCap bounds the hinted-handoff queue per replica per series; the
	// campaign keeps it below CrashRounds so hints alone cannot heal a
	// crash (they do heal stalls, which fit inside the cap).
	HintCap int
	// CrashRounds is the long-outage length in rounds; DefaultFaultConfig
	// sets it to 3x BacklogCap per the campaign's acceptance invariant.
	CrashRounds int
	// RecoveryRounds is the convergence budget: after the last fault
	// clears, the repair arm's replicas must be bit-identical within this
	// many rounds.
	RecoveryRounds int
}

// DefaultFaultConfig is the shipped campaign: six hosts, three replicas,
// one long crash plus a seeded tail of stalls, partitions, and clock skews.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		Seed:           1,
		Hosts:          6,
		Rounds:         48,
		Cadence:        10,
		Tick:           0.01,
		Replicas:       3,
		Quorum:         2,
		BacklogCap:     6,
		HintCap:        4,
		CrashRounds:    18, // 3x the backlog window
		RecoveryRounds: 3,
	}
}

func (cfg FaultConfig) normalize() FaultConfig {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 6
	}
	if cfg.Cadence < 2 {
		cfg.Cadence = 2
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 0.01
	}
	if cfg.Replicas < 3 {
		cfg.Replicas = 3
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = cfg.Replicas/2 + 1
	}
	if cfg.BacklogCap <= 0 {
		cfg.BacklogCap = 6
	}
	if cfg.HintCap < 0 {
		cfg.HintCap = 0
	}
	if cfg.CrashRounds <= 0 {
		cfg.CrashRounds = 3 * cfg.BacklogCap
	}
	if cfg.RecoveryRounds <= 0 {
		cfg.RecoveryRounds = 3
	}
	if min := 2 + cfg.CrashRounds + 10 + cfg.RecoveryRounds; cfg.Rounds < min {
		cfg.Rounds = min
	}
	return cfg
}

// faultSchedule derives the campaign's event list from the seed: the
// guaranteed long crash first, then seeded stalls, partitions, and skews.
// Replica faults never overlap (at most one replica is faulted at a time,
// so the write quorum always holds and divergence comes from the faulted
// replica alone, not from writer backlog growth), and the last
// RecoveryRounds rounds are left quiet for convergence scoring.
func faultSchedule(cfg FaultConfig, replicaAddrs, hostNames []string) []FaultEvent {
	x := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	next := func(n uint64) uint64 {
		x = splitmix64(x)
		return x % n
	}
	nr := uint64(len(replicaAddrs))

	var events []FaultEvent
	r := 2 // let every series exist before the first fault
	// One of each kind is guaranteed — the long crash the acceptance
	// invariant names, a stall inside the hint window, a partition, a skew —
	// then the seeded tail mixes freely.
	events = append(events, FaultEvent{
		Round:  r,
		Kind:   FaultCrash,
		Target: replicaAddrs[next(nr)],
		Rounds: cfg.CrashRounds,
	})
	r += cfg.CrashRounds + 1
	events = append(events, FaultEvent{Round: r, Kind: FaultStall,
		Target: replicaAddrs[next(nr)], Rounds: 2})
	r += 3
	events = append(events, FaultEvent{Round: r, Kind: FaultPartition,
		Target: replicaAddrs[next(nr)], Rounds: 2})
	r += 3
	events = append(events, FaultEvent{Round: r, Kind: FaultSkew,
		Target: hostNames[next(uint64(len(hostNames)))]})
	r++

	last := cfg.Rounds - cfg.RecoveryRounds
	for r < last {
		switch next(4) {
		case 0:
			d := 2 + int(next(2))
			if r+d > last {
				return events
			}
			events = append(events, FaultEvent{Round: r, Kind: FaultPartition,
				Target: replicaAddrs[next(nr)], Rounds: d})
			r += d + 1
		case 1:
			d := 1 + int(next(2))
			if r+d > last {
				return events
			}
			events = append(events, FaultEvent{Round: r, Kind: FaultStall,
				Target: replicaAddrs[next(nr)], Rounds: d})
			r += d + 1
		case 2:
			events = append(events, FaultEvent{Round: r, Kind: FaultSkew,
				Target: hostNames[next(uint64(len(hostNames)))]})
			r++
		default:
			r++ // quiet round
		}
	}
	return events
}

// faultArm runs one arm of the campaign (repair on or off) and scores it.
func faultArm(cfg FaultConfig, events []FaultEvent, repair bool) (ArmResult, error) {
	cat := catalog()
	addrs := make([]string, cfg.Replicas)
	lt := nwsnet.NewLocalTransport()
	mems := make([]*nwsnet.Memory, cfg.Replicas)
	for i := range mems {
		mems[i] = nwsnet.NewMemory(0)
		addrs[i] = fmt.Sprintf("mem-%d", i)
		lt.Register(addrs[i], mems[i])
	}
	group := nwsnet.NewReplicaGroupTransport(lt, addrs, cfg.Quorum)
	group.SetHintCap(cfg.HintCap)
	ledger := &ledgerBackend{inner: group, seen: make(map[string]map[float64]bool)}

	var repairers []*nwsnet.Repairer
	if repair {
		for i, m := range mems {
			peers := make([]string, 0, len(addrs)-1)
			for j, a := range addrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			repairers = append(repairers, nwsnet.NewRepairer(lt, m, peers))
		}
	}

	// The fleet: the same deterministic per-host derivation as Run, at
	// campaign scale, each daemon delivering through the shared quorum
	// group (behind the loss ledger).
	hosts := make([]*simos.Host, cfg.Hosts)
	daemons := make([]*nwsnet.SensorDaemon, cfg.Hosts)
	series := make([]string, cfg.Hosts)
	names := make([]string, cfg.Hosts)
	skew := make([]float64, cfg.Hosts)
	duration := float64(cfg.Rounds) * cfg.Cadence
	for i := 0; i < cfg.Hosts; i++ {
		si := i % len(cat)
		names[i] = fmt.Sprintf("%s-%04d", cat[si].name, i/len(cat))
		u := [4]float64{
			hostFrac(cfg.Seed, i, 0), hostFrac(cfg.Seed, i, 1),
			hostFrac(cfg.Seed, i, 2), hostFrac(cfg.Seed, i, 3),
		}
		profile, steal := cat[si].build(duration, cfg.Cadence, u)
		profile.Name = names[i]
		profile.Seed = int64(hostBits(cfg.Seed, i, 4))
		simCfg := simos.DefaultConfig()
		simCfg.Tick = cfg.Tick
		h := simos.New(simCfg)
		if steal != nil {
			h.SetSteal(steal)
		}
		// Generate past the horizon plus the largest possible skew so a
		// skewed host never runs out of arrivals.
		workload.Submit(h, profile.Generate(2*duration))
		hosts[i] = h
		daemons[i] = nwsnet.NewSensorDaemonBackend(names[i], sensors.SimHost{H: h}, ledger, sensors.DefaultHybridConfig())
		daemons[i].SetBacklogCap(cfg.BacklogCap)
		series[i] = nwsnet.SeriesKey(names[i], "nws_hybrid")
	}

	// Index the schedule by start round; track the round after which every
	// replica fault has cleared.
	starts := make(map[int][]FaultEvent)
	lastClear := 0
	for _, ev := range events {
		starts[ev.Round] = append(starts[ev.Round], ev)
		if ev.Kind != FaultSkew && ev.Round+ev.Rounds > lastClear {
			lastClear = ev.Round + ev.Rounds
		}
	}
	hostIdx := make(map[string]int, len(names))
	for i, n := range names {
		hostIdx[n] = i
	}
	down := make(map[string]bool)
	clearAt := make(map[int][]FaultEvent)

	res := ArmResult{Repair: repair, ConvergedRound: -1, RoundsToConverge: -1}
	if repair {
		res.Name = "repair-on"
	} else {
		res.Name = "repair-off"
	}

	ctx := context.Background()
	skewIdx := 0
	for r := 1; r <= cfg.Rounds; r++ {
		for _, ev := range clearAt[r] {
			switch ev.Kind {
			case FaultCrash, FaultStall:
				lt.SetDown(ev.Target, false)
				down[ev.Target] = false
			case FaultPartition:
				lt.SetPartitioned(ev.Target, false)
			}
		}
		for _, ev := range starts[r] {
			switch ev.Kind {
			case FaultCrash, FaultStall:
				lt.SetDown(ev.Target, true)
				down[ev.Target] = true
				clearAt[ev.Round+ev.Rounds] = append(clearAt[ev.Round+ev.Rounds], ev)
			case FaultPartition:
				lt.SetPartitioned(ev.Target, true)
				clearAt[ev.Round+ev.Rounds] = append(clearAt[ev.Round+ev.Rounds], ev)
			case FaultSkew:
				// A deterministic forward jump between half and one and a
				// half cadences; the host's clock stays monotonic, just
				// ahead of the fleet from here on.
				skewIdx++
				skew[hostIdx[ev.Target]] += cfg.Cadence * (0.5 + hostFrac(cfg.Seed, skewIdx, 7))
			}
		}

		target := float64(r) * cfg.Cadence
		for i := range hosts {
			hosts[i].RunUntil(target + skew[i])
			if err := daemons[i].Step(); err != nil {
				// At most one replica is faulted at a time, so quorum always
				// holds; a step failure is a campaign invariant violation,
				// counted and scored, not fatal.
				res.QuorumFailures++
			}
		}

		if repair {
			for i, rp := range repairers {
				if down[addrs[i]] {
					continue // a crashed process runs no repair loop
				}
				n, _ := rp.RepairRound(ctx)
				res.RepairPointsRecovered += uint64(n)
				res.RepairRounds++
			}
		}

		// Read-plane probes: one quorum-group fetch per host series; the
		// group's failover must absorb any single faulted replica.
		for i := range hosts {
			res.Probes++
			if _, err := group.Fetch(ctx, series[i], 0, 0, 1); err != nil {
				res.ProbeFailures++
			}
		}

		if r > lastClear && res.ConvergedRound < 0 && memsIdentical(mems) {
			res.ConvergedRound = r
			res.RoundsToConverge = r - lastClear
		}
	}

	// Final scoring against the ledger of quorum-acknowledged measurements.
	res.LedgerPoints = ledger.total()
	keys := ledger.seriesKeys()
	divergent := make(map[string]bool)
	for _, m := range mems {
		for _, key := range keys {
			missing := ledger.missingFrom(m, key)
			res.MissingPoints += uint64(missing)
			if missing > 0 {
				divergent[key] = true
			}
		}
	}
	res.DivergentSeries = len(divergent)
	res.Hints = group.HintStats()
	return res, nil
}

// memsIdentical reports whether every memory holds bit-identical content
// (pairwise-equal full digest sets; see nwsnet.SeriesDigest).
func memsIdentical(mems []*nwsnet.Memory) bool {
	base := mems[0].Digests("")
	for _, m := range mems[1:] {
		d := m.Digests("")
		if len(d) != len(base) {
			return false
		}
		for i := range d {
			if d[i] != base[i] {
				return false
			}
		}
	}
	return true
}

// ledgerBackend wraps the campaign's StoreBackend and records every
// quorum-acknowledged measurement — the ground truth the zero-loss invariant
// is judged against. (A sub-store that misses quorum stays in the daemon's
// backlog and is not yet owed to the ledger.)
type ledgerBackend struct {
	inner nwsnet.StoreBackend
	seen  map[string]map[float64]bool
}

func (l *ledgerBackend) StoreBatch(ctx context.Context, stores []nwsnet.BatchStore) ([]error, error) {
	errs, err := l.inner.StoreBatch(ctx, stores)
	for i, st := range stores {
		serr := err
		if errs != nil {
			serr = errs[i]
		}
		if serr != nil {
			continue
		}
		bySeries := l.seen[st.Series]
		if bySeries == nil {
			bySeries = make(map[float64]bool)
			l.seen[st.Series] = bySeries
		}
		for _, p := range st.Points {
			bySeries[p[0]] = true
		}
	}
	return errs, err
}

func (l *ledgerBackend) Health() []nwsnet.ReplicaHealth { return l.inner.Health() }

func (l *ledgerBackend) total() uint64 {
	n := uint64(0)
	for _, bySeries := range l.seen {
		n += uint64(len(bySeries))
	}
	return n
}

func (l *ledgerBackend) seriesKeys() []string {
	keys := make([]string, 0, len(l.seen))
	for k := range l.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// missingFrom counts ledger timestamps of one series absent from a memory.
func (l *ledgerBackend) missingFrom(m *nwsnet.Memory, key string) int {
	resp := m.Handle(nwsnet.Request{Op: nwsnet.OpFetch, Series: key})
	have := make(map[float64]bool, len(resp.Points))
	if resp.Error == "" {
		for _, p := range resp.Points {
			have[p[0]] = true
		}
	}
	missing := 0
	for ts := range l.seen[key] {
		if !have[ts] {
			missing++
		}
	}
	return missing
}

// RunFaultCampaign executes the seeded fault schedule twice — with and
// without anti-entropy repair — and returns the robustness report. The
// report is a pure function of cfg: running twice with equal configs yields
// identical bytes (see TestFaultCampaignByteIdentical).
func RunFaultCampaign(cfg FaultConfig) (*FaultReport, error) {
	cfg = cfg.normalize()
	addrs := make([]string, cfg.Replicas)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("mem-%d", i)
	}
	cat := catalog()
	names := make([]string, cfg.Hosts)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%04d", cat[i%len(cat)].name, i/len(cat))
	}
	events := faultSchedule(cfg, addrs, names)

	report := &FaultReport{
		Schema: FaultSchemaVersion,
		Seed:   cfg.Seed,
		Config: FaultReportConfig{
			Hosts: cfg.Hosts, Rounds: cfg.Rounds, CadenceS: cfg.Cadence, TickS: cfg.Tick,
			Replicas: cfg.Replicas, Quorum: cfg.Quorum, BacklogCap: cfg.BacklogCap,
			HintCap: cfg.HintCap, CrashRounds: cfg.CrashRounds, RecoveryRounds: cfg.RecoveryRounds,
		},
		Events: events,
	}
	for _, repair := range []bool{true, false} {
		arm, err := faultArm(cfg, events, repair)
		if err != nil {
			return nil, err
		}
		report.Arms = append(report.Arms, arm)
	}

	on, off := report.Arms[0], report.Arms[1]
	report.Verdicts = append(report.Verdicts,
		Verdict{
			Config: "repair-on/zero-loss",
			SLO:    "missing_points==0",
			Value:  float64(on.MissingPoints),
			Target: 0,
			Pass:   on.MissingPoints == 0,
		},
		Verdict{
			Config: "repair-on/convergence",
			SLO:    fmt.Sprintf("rounds_to_converge<=%d", cfg.RecoveryRounds),
			Value:  float64(on.RoundsToConverge),
			Target: float64(cfg.RecoveryRounds),
			Pass:   on.RoundsToConverge >= 0 && on.RoundsToConverge <= cfg.RecoveryRounds,
		},
		Verdict{
			Config: "repair-on/availability",
			SLO:    "probe_failures==0",
			Value:  float64(on.ProbeFailures),
			Target: 0,
			Pass:   on.ProbeFailures == 0,
		},
		Verdict{
			Config: "repair-on/quorum",
			SLO:    "quorum_failures==0",
			Value:  float64(on.QuorumFailures),
			Target: 0,
			Pass:   on.QuorumFailures == 0,
		},
		Verdict{
			Config: "repair-off/divergence-reproduced",
			SLO:    "missing_points>0",
			Value:  float64(off.MissingPoints),
			Target: 1,
			Pass:   off.MissingPoints > 0,
		},
	)
	return report, nil
}
