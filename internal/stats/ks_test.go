package stats

import (
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Fatalf("D = %v for identical samples", res.D)
	}
	if res.P < 0.99 {
		t.Fatalf("P = %v for identical samples, want ~1", res.P)
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 2000)
	ys := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("P = %v, same-distribution samples rejected", res.P)
	}
	if res.D > 0.06 {
		t.Fatalf("D = %v, implausibly large for same distribution", res.D)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 0.5 // shifted
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("P = %v, shifted distributions not detected", res.P)
	}
	if res.D < 0.1 {
		t.Fatalf("D = %v, want substantial", res.D)
	}
}

func TestKSShortSamples(t *testing.T) {
	if _, err := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3, 4}); err != ErrShort {
		t.Fatalf("err = %v", err)
	}
}

func TestKSUnequalSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 100)
	ys := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	for i := range ys {
		ys[i] = rng.Float64()
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.N1 != 100 || res.N2 != 3000 {
		t.Fatalf("sizes recorded wrong: %+v", res)
	}
	if res.P < 0.01 {
		t.Fatalf("P = %v on same uniform distribution", res.P)
	}
}

func TestKSProbabilityBounds(t *testing.T) {
	if p := ksProbability(0); p != 1 {
		t.Fatalf("Q(0) = %v", p)
	}
	if p := ksProbability(-1); p != 1 {
		t.Fatalf("Q(-1) = %v", p)
	}
	if p := ksProbability(10); p > 1e-10 {
		t.Fatalf("Q(10) = %v, want ~0", p)
	}
	// Known value: Q(1.0) ~ 0.27.
	if p := ksProbability(1.0); p < 0.25 || p > 0.29 {
		t.Fatalf("Q(1) = %v, want ~0.27", p)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := ECDF(xs, c.t); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if ECDF(nil, 1) != 0 {
		t.Error("ECDF of empty sample should be 0")
	}
}
