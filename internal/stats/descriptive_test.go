package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumKahanPrecision(t *testing.T) {
	// One large value followed by many tiny ones: naive summation loses the
	// tiny contributions, Kahan keeps them.
	xs := make([]float64, 1_000_001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-8
	}
	want := 1e8 + 1e6*1e-8
	if got := Sum(xs); !almostEq(got, want, 1e-8) {
		t.Fatalf("Sum = %.12f, want %.12f", got, want)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known example: population variance 4, sample variance 32/7.
	if got := PopVariance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestVarianceShortSamples(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance(single) = %v", got)
	}
	if got := PopVariance([]float64{3}); got != 0 {
		t.Fatalf("PopVariance(single) = %v", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v, want 2.5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileClamps(t *testing.T) {
	xs := []float64{1, 2}
	if got := Quantile(xs, -1); got != 1 {
		t.Fatalf("Quantile(-1) = %v", got)
	}
	if got := Quantile(xs, 2); got != 2 {
		t.Fatalf("Quantile(2) = %v", got)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if got := MAD(xs); got != 1 {
		t.Fatalf("MAD = %v, want 1", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{100, 1, 2, 3, 4, 5, -100} // outliers at both ends
	if got := TrimmedMean(xs, 0.2); !almostEq(got, 3, 1e-12) {
		t.Fatalf("TrimmedMean = %v, want 3", got)
	}
	if got := TrimmedMean(xs, 0); got != Mean(xs) {
		t.Fatalf("TrimmedMean(0) != Mean")
	}
	if got := TrimmedMean(xs, 0.6); got != Median(xs) {
		t.Fatalf("TrimmedMean(0.6) != Median")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	zero := Summarize(nil)
	if zero != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v", zero)
	}
}

func TestMeanAbsErrorAndRMSE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 1}
	mae, err := MeanAbsError(a, b)
	if err != nil || !almostEq(mae, 1, 1e-12) {
		t.Fatalf("MAE = %v, %v", mae, err)
	}
	rmse, err := RMSE(a, b)
	if err != nil || !almostEq(rmse, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("RMSE = %v, %v", rmse, err)
	}
	if _, err := MeanAbsError(a, b[:2]); err == nil {
		t.Fatal("MAE length mismatch not rejected")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Fatal("RMSE empty not rejected")
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

// Property: mean lies between min and max; variance is non-negative;
// quantiles are monotone in q.
func TestDescriptiveProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		if Variance(xs) < 0 || PopVariance(xs) < 0 {
			return false
		}
		q1, q2 := Quantile(xs, 0.3), Quantile(xs, 0.7)
		return q1 <= q2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: affine transform y = a*x + b maps Mean and Median accordingly and
// scales StdDev by |a|.
func TestAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		a := rng.Float64()*4 - 2
		b := rng.Float64()*10 - 5
		ys := make([]float64, n)
		for i := range xs {
			ys[i] = a*xs[i] + b
		}
		if !almostEq(Mean(ys), a*Mean(xs)+b, 1e-6) {
			t.Fatalf("mean affine violated (a=%v b=%v)", a, b)
		}
		if !almostEq(StdDev(ys), math.Abs(a)*StdDev(xs), 1e-6) {
			t.Fatalf("stddev affine violated (a=%v b=%v)", a, b)
		}
	}
}

// sanitize strips NaN/Inf values that testing/quick may generate, since the
// statistics functions document behavior only for finite inputs.
func sanitize(raw []float64) []float64 {
	xs := raw[:0:0]
	for _, x := range raw {
		if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
			xs = append(xs, x)
		}
	}
	return xs
}
