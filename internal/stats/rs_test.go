package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRSDegenerate(t *testing.T) {
	if RS(nil) != 0 || RS([]float64{1}) != 0 {
		t.Fatal("RS of short sample should be 0")
	}
	if RS([]float64{2, 2, 2}) != 0 {
		t.Fatal("RS of constant sample should be 0")
	}
}

func TestRSPositiveAndShiftInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	rs := RS(xs)
	if rs <= 0 {
		t.Fatalf("RS = %v, want > 0", rs)
	}
	// R/S is invariant under affine maps x -> a*x + b with a > 0.
	shifted := make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = 3*x + 100
	}
	if !almostEq(RS(shifted), rs, 1e-9) {
		t.Fatalf("RS not affine-invariant: %v vs %v", RS(shifted), rs)
	}
}

func TestRSKnownSmallCase(t *testing.T) {
	// xs = {1, 2}: mean 1.5, W = {-0.5, 0}, R = 0.5, S = 0.5 -> R/S = 1.
	if got := RS([]float64{1, 2}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("RS({1,2}) = %v, want 1", got)
	}
}

func TestHurstWhiteNoiseNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1<<15)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, fit, err := HurstRS(xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	// R/S estimation of i.i.d. noise is biased slightly above 0.5 at finite
	// n; accept the conventional band.
	if h < 0.45 || h > 0.65 {
		t.Fatalf("Hurst(white) = %v, want ~0.5..0.6 (fit %+v)", h, fit)
	}
}

func TestHurstRandomWalkNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 1<<15)
	for i := 1; i < len(xs); i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()
	}
	h, _, err := HurstRS(xs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.85 {
		t.Fatalf("Hurst(random walk) = %v, want near 1", h)
	}
}

func TestHurstShortSeries(t *testing.T) {
	if _, _, err := HurstRS([]float64{1, 2, 3}, 8); err == nil {
		t.Fatal("HurstRS on tiny series should fail")
	}
}

func TestPoxPlotShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := PoxPlot(xs, 16)
	if len(pts) == 0 {
		t.Fatal("PoxPlot returned no points")
	}
	minLogD := math.Log10(16)
	maxLogD := math.Log10(4096)
	for _, p := range pts {
		if p.LogD < minLogD-1e-9 || p.LogD > maxLogD+1e-9 {
			t.Fatalf("pox point LogD out of range: %v", p.LogD)
		}
	}
	if PoxPlot(xs[:4], 8) != nil {
		t.Fatal("PoxPlot on series shorter than minD should be nil")
	}
}

func TestDyadicLengths(t *testing.T) {
	ds := dyadicLengths(8, 100)
	want := []int{8, 16, 32, 64, 100}
	if len(ds) != len(want) {
		t.Fatalf("dyadicLengths = %v, want %v", ds, want)
	}
	for i := range ds {
		if ds[i] != want[i] {
			t.Fatalf("dyadicLengths = %v, want %v", ds, want)
		}
	}
	// Exact power-of-two n should not duplicate the final element.
	ds = dyadicLengths(8, 64)
	if ds[len(ds)-1] == ds[len(ds)-2] {
		t.Fatalf("dyadicLengths duplicated final length: %v", ds)
	}
}

func TestHurstVarianceTime(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	white := make([]float64, 1<<14)
	for i := range white {
		white[i] = rng.NormFloat64()
	}
	h, _, err := HurstVarianceTime(white, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.4 || h > 0.6 {
		t.Fatalf("variance-time Hurst(white) = %v, want ~0.5", h)
	}
	if _, _, err := HurstVarianceTime(white[:8], 8); err == nil {
		t.Fatal("variance-time on tiny series should fail")
	}
}

func TestBlockMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := BlockMeans(xs, 2)
	want := []float64{1.5, 3.5, 5.5} // trailing 7 discarded
	if len(got) != len(want) {
		t.Fatalf("BlockMeans = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("BlockMeans = %v, want %v", got, want)
		}
	}
	cp := BlockMeans(xs, 1)
	cp[0] = 99
	if xs[0] == 99 {
		t.Fatal("BlockMeans(m=1) must copy, not alias")
	}
}

// Property: block means of blocks that tile the series exactly preserve the
// overall mean.
func TestBlockMeansPreservesMean(t *testing.T) {
	prop := func(raw []float64, mRaw uint8) bool {
		xs := sanitize(raw)
		m := int(mRaw%16) + 1
		n := (len(xs) / m) * m
		xs = xs[:n]
		if n == 0 {
			return true
		}
		agg := BlockMeans(xs, m)
		return almostEq(Mean(agg), Mean(xs), 1e-6*(1+math.Abs(Mean(xs))))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregating i.i.d. data reduces variance roughly by the block
// size (this is the contrast case to self-similar data, where the decline is
// slower — the heart of the paper's Section 3.2).
func TestAggregationVarianceDeclineIID(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	v1 := Variance(xs)
	v16 := Variance(BlockMeans(xs, 16))
	ratio := v1 / v16
	if ratio < 12 || ratio > 20 {
		t.Fatalf("variance ratio = %v, want ~16 for i.i.d. data", ratio)
	}
}
