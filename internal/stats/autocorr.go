package stats

// Autocovariance returns the lag-k sample autocovariance of xs using the
// biased (1/n) estimator conventional in time-series analysis:
//
//	gamma(k) = (1/n) * sum_{t=0}^{n-k-1} (x_t - mean)(x_{t+k} - mean)
//
// It returns 0 when k is out of range.
func Autocovariance(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n || n == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for t := 0; t+k < n; t++ {
		sum += (xs[t] - m) * (xs[t+k] - m)
	}
	return sum / float64(n)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs,
// gamma(k)/gamma(0). A constant series (zero variance) yields 0 for k > 0
// and 1 for k == 0.
func Autocorrelation(xs []float64, k int) float64 {
	if k == 0 {
		return 1
	}
	g0 := Autocovariance(xs, 0)
	if g0 == 0 {
		return 0
	}
	return Autocovariance(xs, k) / g0
}

// ACF returns the autocorrelation function of xs for lags 0..maxLag
// inclusive. The returned slice has length maxLag+1 with ACF[0] == 1 (unless
// the series is constant). maxLag is clamped to len(xs)-1.
//
// The paper's Figure 2 plots the first 360 autocorrelations of 24-hour
// availability traces sampled at 10-second intervals (one hour of lags).
func ACF(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	out := make([]float64, maxLag+1)
	m := Mean(xs)
	// Single pass per lag over mean-centered values; precompute residuals.
	res := make([]float64, n)
	for i, x := range xs {
		res[i] = x - m
	}
	var g0 float64
	for _, r := range res {
		g0 += r * r
	}
	g0 /= float64(n)
	out[0] = 1
	if g0 == 0 {
		return out
	}
	for k := 1; k <= maxLag; k++ {
		var sum float64
		for t := 0; t+k < n; t++ {
			sum += res[t] * res[t+k]
		}
		out[k] = (sum / float64(n)) / g0
	}
	return out
}

// LjungBox returns the Ljung-Box Q statistic of xs over lags 1..h. Large Q
// indicates the series is not white noise; for white noise Q is approximately
// chi-squared with h degrees of freedom. It is used by tests to check that
// generated self-similar load is strongly autocorrelated while i.i.d. noise
// is not.
func LjungBox(xs []float64, h int) float64 {
	n := len(xs)
	if n < 3 || h < 1 {
		return 0
	}
	if h >= n {
		h = n - 1
	}
	acf := ACF(xs, h)
	var q float64
	for k := 1; k <= h; k++ {
		q += acf[k] * acf[k] / float64(n-k)
	}
	return float64(n) * (float64(n) + 2) * q
}
