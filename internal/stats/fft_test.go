package stats

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownTransform(t *testing.T) {
	// FFT of a constant is an impulse at frequency zero.
	xs := []complex128{1, 1, 1, 1}
	if err := FFT(xs); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(xs[0]-4) > 1e-12 {
		t.Fatalf("DC bin = %v, want 4", xs[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(xs[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, xs[i])
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of an impulse is flat.
	xs := make([]complex128, 8)
	xs[0] = 1
	if err := FFT(xs); err != nil {
		t.Fatal(err)
	}
	for i, v := range xs {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = complex(math.Cos(2*math.Pi*3*float64(i)/n), 0)
	}
	if err := FFT(xs); err != nil {
		t.Fatal(err)
	}
	for i, v := range xs {
		want := 0.0
		if i == 3 || i == n-3 {
			want = n / 2
		}
		if cmplx.Abs(v-complex(want, 0)) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 6)); err == nil {
		t.Fatal("length 6 accepted")
	}
	if err := FFT(nil); err != nil {
		t.Fatalf("empty input rejected: %v", err)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	prop := func(seed int64, sizeExp uint8) bool {
		n := 1 << (sizeExp%8 + 1)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range xs {
			xs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = xs[i]
		}
		if err := FFT(xs); err != nil {
			return false
		}
		if err := IFFT(xs); err != nil {
			return false
		}
		for i := range xs {
			if cmplx.Abs(xs[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2.
	rng := rand.New(rand.NewSource(3))
	n := 256
	xs := make([]complex128, n)
	var timeE float64
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), 0)
		timeE += real(xs[i]) * real(xs[i])
	}
	if err := FFT(xs); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range xs {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(timeE-freqE/float64(n)) > 1e-6 {
		t.Fatalf("Parseval violated: %v vs %v", timeE, freqE/float64(n))
	}
}

func TestPeriodogramWhiteNoiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	freqs, power, err := Periodogram(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != len(power) || len(freqs) == 0 {
		t.Fatalf("lengths %d %d", len(freqs), len(power))
	}
	// White noise with variance 1 has flat spectrum 1/(2*pi); the mean of
	// the lowest and highest quarters should agree.
	q := len(power) / 4
	lo := Mean(power[:q])
	hi := Mean(power[len(power)-q:])
	if lo/hi > 1.3 || hi/lo > 1.3 {
		t.Fatalf("white-noise spectrum not flat: lo %v hi %v", lo, hi)
	}
	want := 1 / (2 * math.Pi)
	if m := Mean(power); math.Abs(m-want) > 0.1*want {
		t.Fatalf("spectrum level %v, want %v", m, want)
	}
}

func TestPeriodogramShort(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2, 3}); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestHurstGPHWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1<<14)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, _, err := HurstGPH(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-0.5) > 0.15 {
		t.Fatalf("GPH Hurst(white) = %v, want ~0.5", h)
	}
}

func TestHurstGPHAR1IsShortMemory(t *testing.T) {
	// AR(1) is short-memory: GPH at low frequencies should stay near 0.5,
	// clearly below a true long-memory reading near 0.85.
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 1<<15)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.5*xs[i-1] + rng.NormFloat64()
	}
	h, _, err := HurstGPH(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h > 0.75 {
		t.Fatalf("GPH Hurst(AR1 phi=.5) = %v, should not look long-memory", h)
	}
}

func TestHurstGPHShortAndBandwidthClamp(t *testing.T) {
	if _, _, err := HurstGPH(make([]float64, 4), 0.5); err == nil {
		t.Fatal("short series accepted")
	}
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// Out-of-range bandwidths clamp rather than fail.
	if _, _, err := HurstGPH(xs, -3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := HurstGPH(xs, 2); err != nil {
		t.Fatal(err)
	}
}
