package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D      float64 // the KS statistic: sup |F1 - F2|
	P      float64 // asymptotic p-value of the null "same distribution"
	N1, N2 int
}

// KolmogorovSmirnov runs the two-sample KS test on xs and ys. The paper
// mentions (and omits, "in favor of brevity") an analysis of whether the
// measurement and forecasting residuals differ significantly; this is the
// standard tool for that comparison. It returns ErrShort if either sample
// has fewer than 4 observations.
func KolmogorovSmirnov(xs, ys []float64) (KSResult, error) {
	if len(xs) < 4 || len(ys) < 4 {
		return KSResult{}, ErrShort
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)

	n1, n2 := len(a), len(b)
	var i, j int
	var d float64
	for i < n1 && j < n2 {
		x1, x2 := a[i], b[j]
		if x1 <= x2 {
			i++
		}
		if x2 <= x1 {
			j++
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	res := KSResult{D: d, N1: n1, N2: n2}
	res.P = ksProbability((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d)
	return res, nil
}

// ksProbability is the asymptotic KS tail probability
// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)
// (Numerical Recipes' probks).
func ksProbability(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum := 0.0
	sign := 1.0
	prev := 0.0
	for k := 1; k <= 100; k++ {
		term := sign * 2 * math.Exp(a2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) <= 1e-9*prev || math.Abs(term) <= 1e-12 {
			return clampP(sum)
		}
		sign = -sign
		prev = math.Abs(term)
	}
	return 1 // failed to converge: be conservative
}

func clampP(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ECDF returns the empirical cumulative distribution function of xs
// evaluated at t: the fraction of observations <= t.
func ECDF(xs []float64, t float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
