package stats

import (
	"math"
	"sort"
)

// RS returns the rescaled adjusted range statistic R(n)/S(n) of xs, following
// Mandelbrot & Taqqu. With W_k the cumulative deviation of the first k
// observations from the sample mean,
//
//	R(n) = max(0, W_1, ..., W_n) - min(0, W_1, ..., W_n)
//	S(n) = population standard deviation of xs
//
// RS returns 0 for samples shorter than 2 or with zero variance.
func RS(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := math.Sqrt(PopVariance(xs))
	if s == 0 {
		return 0
	}
	var w, maxW, minW float64 // W_0 = 0 participates in both extrema
	for _, x := range xs {
		w += x - m
		if w > maxW {
			maxW = w
		}
		if w < minW {
			minW = w
		}
	}
	return (maxW - minW) / s
}

// PoxPoint is one point of a pox plot: log10 of the segment length d and
// log10 of the R/S statistic observed on one segment of that length.
type PoxPoint struct {
	LogD  float64
	LogRS float64
}

// PoxPlot computes the pox-plot point cloud of xs as in Figure 3 of the
// paper: the series is partitioned into non-overlapping segments of length d
// for a logarithmically spaced set of d values between minD and len(xs), and
// R(d)/S(d) is computed for each segment. Segments with zero variance are
// skipped (they carry no R/S information).
//
// minD values below 8 are clamped to 8; very short segments make the R/S
// statistic meaningless.
func PoxPlot(xs []float64, minD int) []PoxPoint {
	n := len(xs)
	if minD < 8 {
		minD = 8
	}
	if n < minD {
		return nil
	}
	var pts []PoxPoint
	for _, d := range dyadicLengths(minD, n) {
		for start := 0; start+d <= n; start += d {
			rs := RS(xs[start : start+d])
			if rs <= 0 {
				continue
			}
			pts = append(pts, PoxPoint{
				LogD:  math.Log10(float64(d)),
				LogRS: math.Log10(rs),
			})
		}
	}
	return pts
}

// dyadicLengths returns segment lengths minD, 2*minD, 4*minD, ... up to and
// including the largest power-of-two multiple not exceeding n, plus n itself
// so that the full-series point appears on the plot.
func dyadicLengths(minD, n int) []int {
	var out []int
	for d := minD; d <= n; d *= 2 {
		out = append(out, d)
	}
	if len(out) == 0 || out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// HurstRS estimates the Hurst parameter of xs by R/S analysis: it builds the
// pox plot, averages log10(R/S) within each log10(d) bucket, and fits a least
// squares line through the bucket means (the solid regression line in the
// paper's Figure 3). The slope of that line is the Hurst estimate.
//
// The returned LinFit's Slope is the Hurst parameter; callers interested only
// in H can ignore the rest. HurstRS returns ErrShort when xs is too short to
// produce at least three distinct segment lengths.
func HurstRS(xs []float64, minD int) (float64, LinFit, error) {
	pts := PoxPlot(xs, minD)
	if len(pts) == 0 {
		return 0, LinFit{}, ErrShort
	}
	// Bucket by LogD value (the set of distinct d is small).
	sums := map[float64]*meanAcc{}
	for _, p := range pts {
		acc := sums[p.LogD]
		if acc == nil {
			acc = &meanAcc{}
			sums[p.LogD] = acc
		}
		acc.add(p.LogRS)
	}
	if len(sums) < 3 {
		return 0, LinFit{}, ErrShort
	}
	logd := make([]float64, 0, len(sums))
	for d := range sums {
		logd = append(logd, d)
	}
	sort.Float64s(logd)
	meanRS := make([]float64, len(logd))
	for i, d := range logd {
		meanRS[i] = sums[d].mean()
	}
	fit, err := LinearRegression(logd, meanRS)
	if err != nil {
		return 0, LinFit{}, err
	}
	return fit.Slope, fit, nil
}

type meanAcc struct {
	sum float64
	n   int
}

func (a *meanAcc) add(x float64) { a.sum += x; a.n++ }
func (a *meanAcc) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// HurstVarianceTime estimates the Hurst parameter from the variance-time
// plot: for a self-similar series, Var(X^(m)) ~ m^(2H-2), so the slope beta
// of log Var(X^(m)) versus log m gives H = 1 + beta/2. Aggregation levels are
// dyadic starting at 2 while at least minBlocks blocks remain.
func HurstVarianceTime(xs []float64, minBlocks int) (float64, LinFit, error) {
	n := len(xs)
	if minBlocks < 2 {
		minBlocks = 2
	}
	var logm, logv []float64
	for m := 1; n/m >= minBlocks; m *= 2 {
		agg := BlockMeans(xs, m)
		v := Variance(agg)
		if v <= 0 {
			continue
		}
		logm = append(logm, math.Log10(float64(m)))
		logv = append(logv, math.Log10(v))
	}
	if len(logm) < 3 {
		return 0, LinFit{}, ErrShort
	}
	fit, err := LinearRegression(logm, logv)
	if err != nil {
		return 0, LinFit{}, err
	}
	return 1 + fit.Slope/2, fit, nil
}

// BlockMeans returns the length-m block means of xs (the aggregated series
// X^(m) of Section 3.2). A trailing partial block is discarded. m <= 1
// returns a copy of xs.
func BlockMeans(xs []float64, m int) []float64 {
	if m <= 1 {
		return append([]float64(nil), xs...)
	}
	nb := len(xs) / m
	out := make([]float64, nb)
	for b := 0; b < nb; b++ {
		out[b] = Mean(xs[b*m : (b+1)*m])
	}
	return out
}
