package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	if got := Autocorrelation(xs, 0); got != 1 {
		t.Fatalf("ACF(0) = %v, want 1", got)
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 3}
	if got := Autocorrelation(xs, 1); got != 0 {
		t.Fatalf("ACF(1) of constant = %v, want 0", got)
	}
}

func TestAutocovarianceOutOfRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Autocovariance(xs, -1) != 0 || Autocovariance(xs, 3) != 0 {
		t.Fatal("out-of-range lags should yield 0")
	}
	if Autocovariance(nil, 0) != 0 {
		t.Fatal("empty series should yield 0")
	}
}

func TestACFAlternatingSeries(t *testing.T) {
	// +1,-1,+1,-1,... has lag-1 autocorrelation close to -1.
	xs := make([]float64, 1000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if got := Autocorrelation(xs, 1); got > -0.99 {
		t.Fatalf("ACF(1) of alternating = %v, want near -1", got)
	}
	if got := Autocorrelation(xs, 2); got < 0.99 {
		t.Fatalf("ACF(2) of alternating = %v, want near 1", got)
	}
}

func TestACFWhiteNoiseDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	acf := ACF(xs, 50)
	for k := 1; k <= 50; k++ {
		if math.Abs(acf[k]) > 0.05 {
			t.Fatalf("white-noise ACF(%d) = %v, want ~0", k, acf[k])
		}
	}
}

func TestACFAR1MatchesTheory(t *testing.T) {
	// AR(1) with coefficient phi has ACF(k) = phi^k.
	const phi = 0.8
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100000)
	for i := 1; i < len(xs); i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	acf := ACF(xs, 5)
	for k := 1; k <= 5; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.03 {
			t.Fatalf("AR(1) ACF(%d) = %v, want %v", k, acf[k], want)
		}
	}
}

func TestACFClampsMaxLag(t *testing.T) {
	xs := []float64{1, 2, 3}
	acf := ACF(xs, 100)
	if len(acf) != 3 {
		t.Fatalf("ACF length = %d, want 3", len(acf))
	}
	if got := ACF(xs, -5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ACF negative maxLag = %v", got)
	}
	if ACF(nil, 10) != nil {
		t.Fatal("ACF(nil) should be nil")
	}
}

func TestACFMatchesPointwiseAutocorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	acf := ACF(xs, 20)
	for k := 0; k <= 20; k++ {
		if !almostEq(acf[k], Autocorrelation(xs, k), 1e-9) {
			t.Fatalf("ACF[%d] = %v differs from Autocorrelation = %v",
				k, acf[k], Autocorrelation(xs, k))
		}
	}
}

func TestLjungBoxDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	white := make([]float64, 5000)
	for i := range white {
		white[i] = rng.NormFloat64()
	}
	ar := make([]float64, 5000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.9*ar[i-1] + rng.NormFloat64()
	}
	h := 20
	qWhite := LjungBox(white, h)
	qAR := LjungBox(ar, h)
	// chi^2_{20} 99th percentile is ~37.6; white noise should sit far below
	// the AR(1) statistic.
	if qWhite > 60 {
		t.Fatalf("LjungBox(white) = %v, unexpectedly large", qWhite)
	}
	if qAR < 1000 {
		t.Fatalf("LjungBox(AR1) = %v, unexpectedly small", qAR)
	}
	if LjungBox(white[:2], 5) != 0 {
		t.Fatal("LjungBox on too-short series should be 0")
	}
}
