package stats

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 Cooley-Tukey fast Fourier transform of
// xs. The length must be a power of two. The transform is unnormalized:
// FFT followed by IFFT returns the original values.
func FFT(xs []complex128) error {
	return fft(xs, false)
}

// IFFT computes the inverse FFT of xs in place (normalized by 1/n).
func IFFT(xs []complex128) error {
	return fft(xs, true)
}

func fft(xs []complex128, inverse bool) error {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return errors.New("stats: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := xs[start+k]
				b := xs[start+k+half] * w
				xs[start+k] = a + b
				xs[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range xs {
			xs[i] *= inv
		}
	}
	return nil
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Periodogram returns the raw periodogram of xs at the Fourier frequencies
// lambda_j = 2*pi*j/n for j = 1..n/2:
//
//	I(lambda_j) = |sum_t x_t e^{-i lambda_j t}|^2 / (2*pi*n)
//
// The series is mean-centered and zero-padded to a power of two; the
// returned frequencies correspond to the padded length. Periodogram returns
// an error for series shorter than 8.
func Periodogram(xs []float64) (freqs, power []float64, err error) {
	n := len(xs)
	if n < 8 {
		return nil, nil, ErrShort
	}
	m := Mean(xs)
	padded := nextPow2(n)
	buf := make([]complex128, padded)
	for i, x := range xs {
		buf[i] = complex(x-m, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, nil, err
	}
	half := padded / 2
	freqs = make([]float64, half)
	power = make([]float64, half)
	norm := 1 / (2 * math.Pi * float64(n))
	for j := 1; j <= half; j++ {
		freqs[j-1] = 2 * math.Pi * float64(j) / float64(padded)
		re := real(buf[j])
		im := imag(buf[j])
		power[j-1] = (re*re + im*im) * norm
	}
	return freqs, power, nil
}

// HurstGPH estimates the Hurst parameter with the Geweke–Porter-Hudak
// log-periodogram regression: for a long-memory process the spectral
// density behaves as f(lambda) ~ lambda^(1-2H) near zero, so regressing
// log I(lambda_j) on log(4*sin^2(lambda_j/2)) over the lowest n^bandwidth
// frequencies gives slope -(d) with H = d + 1/2.
//
// bandwidth is the exponent of the frequency cutoff (0.5 is conventional;
// values outside (0, 1) are clamped to 0.5). HurstGPH returns ErrShort for
// series too short to supply at least 8 usable frequencies.
func HurstGPH(xs []float64, bandwidth float64) (float64, LinFit, error) {
	if bandwidth <= 0 || bandwidth >= 1 {
		bandwidth = 0.5
	}
	freqs, power, err := Periodogram(xs)
	if err != nil {
		return 0, LinFit{}, err
	}
	mCut := int(math.Pow(float64(len(xs)), bandwidth))
	if mCut > len(freqs) {
		mCut = len(freqs)
	}
	var lx, ly []float64
	for j := 0; j < mCut; j++ {
		if power[j] <= 0 {
			continue
		}
		s := 2 * math.Sin(freqs[j]/2)
		lx = append(lx, math.Log(s*s))
		ly = append(ly, math.Log(power[j]))
	}
	if len(lx) < 8 {
		return 0, LinFit{}, ErrShort
	}
	fit, err := LinearRegression(lx, ly)
	if err != nil {
		return 0, LinFit{}, err
	}
	return -fit.Slope + 0.5, fit, nil
}
