package stats_test

import (
	"fmt"
	"math/rand"

	"nwscpu/internal/stats"
)

func ExampleACF() {
	// An alternating series is perfectly anti-correlated at lag 1.
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	acf := stats.ACF(xs, 2)
	fmt.Printf("lag0 %.0f lag1 %.2f\n", acf[0], acf[1])
	// Output: lag0 1 lag1 -0.88
}

func ExampleHurstRS() {
	// A random walk is maximally persistent: H near 1.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1<<14)
	for i := 1; i < len(xs); i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()
	}
	h, _, _ := stats.HurstRS(xs, 16)
	fmt.Printf("H > 0.85: %v\n", h > 0.85)
	// Output: H > 0.85: true
}

func ExampleBlockMeans() {
	// The paper's X^(m) aggregated series: block means of the original.
	fmt.Println(stats.BlockMeans([]float64{1, 3, 5, 7}, 2))
	// Output: [2 6]
}

func ExampleSummarize() {
	s := stats.Summarize([]float64{1, 2, 3, 4, 5})
	fmt.Printf("mean %.1f median %.1f\n", s.Mean, s.Median)
	// Output: mean 3.0 median 3.0
}
