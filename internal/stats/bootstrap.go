package stats

import (
	"math/rand"
)

// MovingBlockBootstrap resamples a time series by concatenating randomly
// chosen contiguous blocks of length blockLen until the original length is
// reached, preserving short-range dependence inside blocks — the standard
// resampling scheme for the long-range-dependent series this repository
// studies, where i.i.d. bootstrap would wildly understate uncertainty.
//
// It returns one resampled series. blockLen must be in [1, len(xs)].
func MovingBlockBootstrap(rng *rand.Rand, xs []float64, blockLen int) []float64 {
	n := len(xs)
	if n == 0 {
		return nil
	}
	if blockLen < 1 {
		blockLen = 1
	}
	if blockLen > n {
		blockLen = n
	}
	out := make([]float64, 0, n)
	for len(out) < n {
		start := rng.Intn(n - blockLen + 1)
		out = append(out, xs[start:start+blockLen]...)
	}
	return out[:n]
}

// BootstrapCI estimates a central confidence interval for stat(xs) with the
// moving-block bootstrap: resamples copies of xs, applies stat to each, and
// returns the percentile interval of the requested coverage. It returns
// ErrShort for samples shorter than 2*blockLen and clamps coverage outside
// (0, 1) to 0.95.
func BootstrapCI(rng *rand.Rand, xs []float64, blockLen, resamples int,
	coverage float64, stat func([]float64) float64) (lo, hi float64, err error) {

	if blockLen < 1 {
		blockLen = 1
	}
	if len(xs) < 2*blockLen {
		return 0, 0, ErrShort
	}
	if resamples < 10 {
		resamples = 10
	}
	if coverage <= 0 || coverage >= 1 {
		coverage = 0.95
	}
	vals := make([]float64, resamples)
	for i := range vals {
		vals[i] = stat(MovingBlockBootstrap(rng, xs, blockLen))
	}
	alpha := (1 - coverage) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha), nil
}
