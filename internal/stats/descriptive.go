// Package stats provides the statistical machinery used throughout the
// repository: descriptive statistics, autocorrelation analysis, least-squares
// regression, and the R/S (rescaled adjusted range) analysis used to estimate
// the Hurst parameter of CPU availability series, following the methodology
// of Mandelbrot & Taqqu and of Leland et al. as applied by Wolski, Spring and
// Hayes (HPDC 1999).
//
// All functions operate on plain []float64 slices and never modify their
// inputs unless explicitly documented.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrShort is returned when a sample is too short for the requested analysis.
var ErrShort = errors.New("stats: sample too short")

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	// Kahan compensated summation: availability series are long (8640+
	// samples per day) and built from values near 1.0, where naive
	// accumulation loses precision.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It returns 0 for samples with fewer than two elements.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population (n denominator) variance of xs.
// It returns 0 for empty samples.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying it.
// It returns 0 for an empty sample.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 quantile, the R default).
// It returns 0 for an empty sample and clamps q into [0,1].
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n == 1 {
		return tmp[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// MAD returns the median absolute deviation of xs about its median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// TrimmedMean returns the mean of xs after discarding the lowest and highest
// frac fraction of the sorted sample (0 <= frac < 0.5). With frac = 0 it is
// the ordinary mean. If trimming would discard everything the median is
// returned.
func TrimmedMean(xs []float64, frac float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if frac <= 0 {
		return Mean(xs)
	}
	if frac >= 0.5 {
		return Median(xs)
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	k := int(float64(n) * frac)
	if 2*k >= n {
		return Median(xs)
	}
	return Mean(tmp[k : n-k])
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased sample variance
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
	Q25      float64
	Q75      float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	v := Variance(xs)
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		Variance: v,
		StdDev:   math.Sqrt(v),
		Min:      Min(xs),
		Max:      Max(xs),
		Median:   Median(xs),
		Q25:      Quantile(xs, 0.25),
		Q75:      Quantile(xs, 0.75),
	}
}

// MeanAbsError returns the mean absolute difference between corresponding
// elements of a and b. The slices must have equal, nonzero length.
func MeanAbsError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: MeanAbsError length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// RMSE returns the root-mean-square error between corresponding elements of
// a and b. The slices must have equal, nonzero length.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}
