package stats

import "errors"

// LinFit holds the result of an ordinary least-squares fit y = Intercept +
// Slope*x.
type LinFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
	N         int
}

// LinearRegression fits y = a + b*x by ordinary least squares. xs and ys must
// have equal length of at least two, and xs must not be constant.
func LinearRegression(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, errors.New("stats: LinearRegression length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return LinFit{}, ErrShort
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinFit{}, errors.New("stats: LinearRegression degenerate x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = (sxy * sxy) / (sxx * syy)
	}
	return LinFit{Slope: b, Intercept: a, R2: r2, N: n}, nil
}
