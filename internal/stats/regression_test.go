package stats

import (
	"math/rand"
	"testing"
)

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = -3*xs[i] + 5 + rng.NormFloat64()*0.1
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, -3, 0.01) || !almostEq(fit.Intercept, 5, 0.05) {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v, want near 1", fit.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("short sample not rejected")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x not rejected")
	}
}

func TestLinearRegressionFlatY(t *testing.T) {
	fit, err := LinearRegression([]float64{1, 2, 3}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 7 || fit.R2 != 0 {
		t.Fatalf("flat fit = %+v", fit)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100})
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -1, 0, 1.9 in bin 0; 2 in bin 1; 5 in bin 2; 9.9, 10, 100 in bin 4.
	want := []int{3, 1, 1, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if s := h.String(); len(s) == 0 {
		t.Fatal("String empty")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
