package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are counted in the first or last bin respectively.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
// It panics if nbins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 {
		panic("stats: NewHistogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: NewHistogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// String renders a compact ASCII bar chart, one bin per line, scaled so that
// the fullest bin is width columns wide.
func (h *Histogram) String() string {
	const width = 50
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%8.3f |%-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
