package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMovingBlockBootstrapShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out := MovingBlockBootstrap(rng, xs, 3)
	if len(out) != len(xs) {
		t.Fatalf("length %d, want %d", len(out), len(xs))
	}
	// Every value must come from the original sample.
	valid := map[float64]bool{}
	for _, x := range xs {
		valid[x] = true
	}
	for _, v := range out {
		if !valid[v] {
			t.Fatalf("resampled value %v not in source", v)
		}
	}
	if MovingBlockBootstrap(rng, nil, 3) != nil {
		t.Fatal("empty input should yield nil")
	}
	// Degenerate block lengths clamp.
	if got := MovingBlockBootstrap(rng, xs, 0); len(got) != len(xs) {
		t.Fatal("blockLen 0 not clamped")
	}
	if got := MovingBlockBootstrap(rng, xs, 100); len(got) != len(xs) {
		t.Fatal("oversized blockLen not clamped")
	}
}

func TestMovingBlockBootstrapPreservesBlocks(t *testing.T) {
	// With blockLen == len(xs) the resample is exactly the original.
	rng := rand.New(rand.NewSource(2))
	xs := []float64{9, 8, 7, 6}
	out := MovingBlockBootstrap(rng, xs, 4)
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatalf("full-block resample differs: %v", out)
		}
	}
}

func TestBootstrapCICoversTrueMean(t *testing.T) {
	// i.i.d. noise with known mean: the 95% CI should contain it most of
	// the time, and its width should shrink with sample size.
	rng := rand.New(rand.NewSource(3))
	hits := 0
	const trials = 40
	var width1000 float64
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 1000)
		for i := range xs {
			xs[i] = 5 + rng.NormFloat64()
		}
		lo, hi, err := BootstrapCI(rng, xs, 20, 200, 0.95, Mean)
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("inverted interval %v..%v", lo, hi)
		}
		if lo <= 5 && 5 <= hi {
			hits++
		}
		width1000 += hi - lo
	}
	if hits < trials*80/100 {
		t.Fatalf("CI covered the true mean only %d/%d times", hits, trials)
	}
	width1000 /= trials
	// sd of the mean is ~0.032 at n=1000; a 95% interval is ~0.12 wide.
	if width1000 < 0.05 || width1000 > 0.3 {
		t.Fatalf("mean CI width = %v, implausible", width1000)
	}
}

func TestBootstrapCIWiderUnderDependence(t *testing.T) {
	// Strongly autocorrelated series: the block bootstrap must report wider
	// intervals than an i.i.d.-style (block length 1) bootstrap would.
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 2000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.95*xs[i-1] + rng.NormFloat64()*0.1
	}
	lo1, hi1, err := BootstrapCI(rng, xs, 1, 300, 0.95, Mean)
	if err != nil {
		t.Fatal(err)
	}
	loB, hiB, err := BootstrapCI(rng, xs, 100, 300, 0.95, Mean)
	if err != nil {
		t.Fatal(err)
	}
	if (hiB - loB) <= (hi1-lo1)*1.5 {
		t.Fatalf("block CI %v not clearly wider than iid CI %v on dependent data",
			hiB-loB, hi1-lo1)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, _, err := BootstrapCI(rng, []float64{1, 2, 3}, 10, 100, 0.95, Mean); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
	// Coverage clamps rather than fails.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	if _, _, err := BootstrapCI(rng, xs, 5, 50, -1, Mean); err != nil {
		t.Fatal(err)
	}
	// Custom statistics work.
	lo, hi, err := BootstrapCI(rng, xs, 5, 50, 0.9, func(v []float64) float64 {
		return Quantile(v, 0.5)
	})
	if err != nil || math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("median CI: %v %v %v", lo, hi, err)
	}
}
