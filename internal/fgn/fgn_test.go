package fgn

import (
	"math"
	"math/rand"
	"testing"

	"nwscpu/internal/stats"
)

func TestAutocovariance(t *testing.T) {
	// gamma(0) = 1 for any H (unit variance).
	for _, h := range []float64{0.3, 0.5, 0.7, 0.9} {
		if g := Autocovariance(h, 0); math.Abs(g-1) > 1e-12 {
			t.Fatalf("gamma(0) at H=%v is %v", h, g)
		}
	}
	// H = 0.5 is white noise: gamma(k) = 0 for k > 0.
	for k := 1; k < 10; k++ {
		if g := Autocovariance(0.5, k); math.Abs(g) > 1e-12 {
			t.Fatalf("white-noise gamma(%d) = %v", k, g)
		}
	}
	// H > 0.5: positive, decaying correlations; symmetric in k.
	prev := 1.0
	for k := 1; k < 50; k++ {
		g := Autocovariance(0.8, k)
		if g <= 0 || g >= prev {
			t.Fatalf("gamma(%d) = %v not positive decaying (prev %v)", k, g, prev)
		}
		if g != Autocovariance(0.8, -k) {
			t.Fatalf("gamma not symmetric at %d", k)
		}
		prev = g
	}
	// H < 0.5: negative lag-1 correlation (antipersistent).
	if g := Autocovariance(0.3, 1); g >= 0 {
		t.Fatalf("antipersistent gamma(1) = %v, want < 0", g)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, h := range []float64{0, 1, -0.5, 1.5} {
		if _, err := Generate(rng, h, 100); err == nil {
			t.Errorf("Hurst %v accepted", h)
		}
	}
	if _, err := Generate(rng, 0.7, 0); err == nil {
		t.Error("n = 0 accepted")
	}
}

func TestGenerateMomentsAndLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, h := range []float64{0.3, 0.5, 0.7, 0.9} {
		xs, err := Generate(rng, h, 1<<14)
		if err != nil {
			t.Fatalf("H=%v: %v", h, err)
		}
		if len(xs) != 1<<14 {
			t.Fatalf("length %d", len(xs))
		}
		m := stats.Mean(xs)
		v := stats.Variance(xs)
		// Long-memory sample means converge slowly; loose bands.
		if math.Abs(m) > 0.3 {
			t.Fatalf("H=%v: mean %v, want ~0", h, m)
		}
		if v < 0.7 || v > 1.4 {
			t.Fatalf("H=%v: variance %v, want ~1", h, v)
		}
	}
}

func TestGenerateEmpiricalAutocovariance(t *testing.T) {
	// Average the lag-1 sample autocovariance over many replicates and
	// compare to the closed form.
	const h = 0.75
	want := Autocovariance(h, 1)
	rng := rand.New(rand.NewSource(3))
	var sum float64
	const reps = 40
	for r := 0; r < reps; r++ {
		xs, err := Generate(rng, h, 4096)
		if err != nil {
			t.Fatal(err)
		}
		sum += stats.Autocovariance(xs, 1)
	}
	got := sum / reps
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("empirical gamma(1) = %v, want %v", got, want)
	}
}

// The decisive cross-validation: generate fGn with known H and check that
// both Hurst estimators in package stats recover it.
func TestHurstEstimatorsRecoverKnownH(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, h := range []float64{0.6, 0.7, 0.8} {
		xs, err := Generate(rng, h, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		rs, _, err := stats.HurstRS(xs, 16)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rs-h) > 0.12 {
			t.Errorf("R/S estimate %v for true H %v", rs, h)
		}
		gph, _, err := stats.HurstGPH(xs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gph-h) > 0.12 {
			t.Errorf("GPH estimate %v for true H %v", gph, h)
		}
	}
}

func TestFBMIsCumulativeSum(t *testing.T) {
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(5))
	noise, err := Generate(rngA, 0.7, 256)
	if err != nil {
		t.Fatal(err)
	}
	path, err := FBM(rngB, 0.7, 256)
	if err != nil {
		t.Fatal(err)
	}
	var cum float64
	for i := range noise {
		cum += noise[i]
		if math.Abs(path[i]-cum) > 1e-9 {
			t.Fatalf("FBM[%d] = %v, want %v", i, path[i], cum)
		}
	}
}

func TestFBMSelfSimilarScaling(t *testing.T) {
	// Var(B_n) ~ n^{2H}: compare variance of increments over span n vs 4n;
	// ratio should be ~4^{2H}.
	const h = 0.8
	rng := rand.New(rand.NewSource(6))
	var v1, v4 []float64
	for r := 0; r < 200; r++ {
		path, err := FBM(rng, h, 1024)
		if err != nil {
			t.Fatal(err)
		}
		v1 = append(v1, path[255])
		v4 = append(v4, path[1023])
	}
	ratio := stats.Variance(v4) / stats.Variance(v1)
	want := math.Pow(4, 2*h)
	if ratio < want*0.6 || ratio > want*1.5 {
		t.Fatalf("fBm variance ratio %v, want ~%v", ratio, want)
	}
}

func TestAvailabilityTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, err := AvailabilityTrace(rng, 0.7, 0.7, 0.15, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xs {
		if v < 0 || v > 1 {
			t.Fatalf("value %v out of [0,1]", v)
		}
	}
	m := stats.Mean(xs)
	if m < 0.55 || m > 0.85 {
		t.Fatalf("mean %v, want ~0.7", m)
	}
	if _, err := AvailabilityTrace(rng, 0.7, 2, 0.1, 10); err == nil {
		t.Fatal("bad mean accepted")
	}
	if _, err := AvailabilityTrace(rng, 0.7, 0.5, -1, 10); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestGenerateHalfIsGaussianWhite(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs, err := Generate(rng, 0.5, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if lb := stats.LjungBox(xs, 20); lb > 60 {
		t.Fatalf("H=0.5 output is autocorrelated: LjungBox %v", lb)
	}
}

func BenchmarkGenerate64k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(rng, 0.7, 1<<16); err != nil {
			b.Fatal(err)
		}
	}
}
