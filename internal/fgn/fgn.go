// Package fgn generates exact fractional Gaussian noise — the canonical
// stationary process with a prescribed Hurst parameter — using the
// Davies–Harte circulant-embedding method (O(n log n) via the FFT).
//
// The repository uses it two ways: as ground truth for validating the Hurst
// estimators in package stats (generate H = 0.7, estimate, compare), and as
// a direct synthetic availability-trace generator for forecaster stress
// tests, complementing the mechanistic simulator workloads.
package fgn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"nwscpu/internal/stats"
)

// Autocovariance returns the lag-k autocovariance of unit-variance
// fractional Gaussian noise with Hurst parameter h:
//
//	gamma(k) = ( |k+1|^2H - 2|k|^2H + |k-1|^2H ) / 2
func Autocovariance(h float64, k int) float64 {
	if k < 0 {
		k = -k
	}
	fk := float64(k)
	return 0.5 * (math.Pow(fk+1, 2*h) - 2*math.Pow(fk, 2*h) + math.Pow(math.Abs(fk-1), 2*h))
}

// ErrEmbedding reports that the circulant embedding produced a negative
// eigenvalue (cannot happen for Hurst in (0,1) with exact arithmetic; tiny
// negative values from rounding are clamped, large ones are an error).
var ErrEmbedding = errors.New("fgn: circulant embedding not nonneg definite")

// Generate returns n samples of zero-mean, unit-variance fractional
// Gaussian noise with the given Hurst parameter, using rng for the
// underlying Gaussians. It returns an error if hurst is outside (0, 1) or
// n < 1.
func Generate(rng *rand.Rand, hurst float64, n int) ([]float64, error) {
	if hurst <= 0 || hurst >= 1 {
		return nil, fmt.Errorf("fgn: Hurst parameter %v outside (0,1)", hurst)
	}
	if n < 1 {
		return nil, errors.New("fgn: n must be positive")
	}
	if hurst == 0.5 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out, nil
	}
	// Circulant embedding of the covariance over a power-of-two ring of
	// size m = 2*npad >= 2n.
	npad := 1
	for npad < n {
		npad <<= 1
	}
	m := 2 * npad

	c := make([]complex128, m)
	for k := 0; k <= npad; k++ {
		c[k] = complex(Autocovariance(hurst, k), 0)
	}
	for k := 1; k < npad; k++ {
		c[m-k] = c[k]
	}
	if err := stats.FFT(c); err != nil {
		return nil, err
	}
	// Eigenvalues of the circulant matrix; must be nonnegative.
	lam := make([]float64, m)
	for i, v := range c {
		lam[i] = real(v)
		if lam[i] < 0 {
			if lam[i] > -1e-8*float64(m) {
				lam[i] = 0
			} else {
				return nil, ErrEmbedding
			}
		}
	}

	w := make([]complex128, m)
	w[0] = complex(math.Sqrt(lam[0]/float64(m))*rng.NormFloat64(), 0)
	w[npad] = complex(math.Sqrt(lam[npad]/float64(m))*rng.NormFloat64(), 0)
	for k := 1; k < npad; k++ {
		s := math.Sqrt(lam[k] / (2 * float64(m)))
		a, b := rng.NormFloat64(), rng.NormFloat64()
		w[k] = complex(s*a, s*b)
		w[m-k] = complex(s*a, -s*b)
	}
	if err := stats.FFT(w); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = real(w[i])
	}
	return out, nil
}

// FBM returns a fractional Brownian motion path of length n (the cumulative
// sum of fractional Gaussian noise): B[0] = X[0], B[i] = B[i-1] + X[i].
func FBM(rng *rand.Rand, hurst float64, n int) ([]float64, error) {
	xs, err := Generate(rng, hurst, n)
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		xs[i] += xs[i-1]
	}
	return xs, nil
}

// AvailabilityTrace maps fractional Gaussian noise onto a plausible CPU
// availability series: mean + scale*noise, clamped to [0, 1]. It gives
// forecaster tests a series with exactly known long-memory structure,
// independent of the scheduler simulator.
func AvailabilityTrace(rng *rand.Rand, hurst, mean, scale float64, n int) ([]float64, error) {
	if mean < 0 || mean > 1 {
		return nil, fmt.Errorf("fgn: mean %v outside [0,1]", mean)
	}
	if scale < 0 {
		return nil, fmt.Errorf("fgn: negative scale %v", scale)
	}
	xs, err := Generate(rng, hurst, n)
	if err != nil {
		return nil, err
	}
	for i, x := range xs {
		v := mean + scale*x
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		xs[i] = v
	}
	return xs, nil
}
