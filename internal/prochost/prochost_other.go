//go:build !linux

package prochost

import "errors"

// Host is unavailable on non-Linux platforms; the simulator backend remains
// fully functional everywhere.
type Host struct{}

// ErrUnsupported reports that live-host monitoring needs Linux /proc.
var ErrUnsupported = errors.New("prochost: live host monitoring requires Linux")

// New reports ErrUnsupported on non-Linux platforms.
func New() (*Host, error) { return nil, ErrUnsupported }

// NewAt reports ErrUnsupported on non-Linux platforms.
func NewAt(string) (*Host, error) { return nil, ErrUnsupported }
