//go:build linux

package prochost

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"time"

	"nwscpu/internal/sensors"
)

// jiffiesPerSecond is the kernel USER_HZ that /proc/stat counters use.
// Linux fixes the userspace-visible value at 100 regardless of CONFIG_HZ.
const jiffiesPerSecond = 100.0

// rusageThread is RUSAGE_THREAD, absent from package syscall's constants.
const rusageThread = 1

// Host measures the local Linux machine. It satisfies sensors.Host, so the
// paper's sensors run unchanged against live /proc data.
type Host struct {
	procRoot string // normally "/proc"; tests point it at fixtures
	start    time.Time
}

// New returns a Host reading the real /proc filesystem. It fails if the
// needed files are unreadable.
func New() (*Host, error) {
	return NewAt("/proc")
}

// NewAt returns a Host reading a /proc-format tree rooted at dir (for
// testing with fixture files).
func NewAt(dir string) (*Host, error) {
	h := &Host{procRoot: dir, start: time.Now()}
	if _, err := h.readLoad(); err != nil {
		return nil, err
	}
	if _, err := h.readStat(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Host) readLoad() (LoadInfo, error) {
	b, err := os.ReadFile(h.procRoot + "/loadavg")
	if err != nil {
		return LoadInfo{}, fmt.Errorf("prochost: %w", err)
	}
	return ParseLoadAvg(string(b))
}

func (h *Host) readStat() (StatTimes, error) {
	b, err := os.ReadFile(h.procRoot + "/stat")
	if err != nil {
		return StatTimes{}, fmt.Errorf("prochost: %w", err)
	}
	return ParseStat(string(b))
}

// Now implements sensors.Host: seconds since the Host was created.
func (h *Host) Now() float64 { return time.Since(h.start).Seconds() }

// LoadAvg implements sensors.Host.
func (h *Host) LoadAvg() float64 {
	li, err := h.readLoad()
	if err != nil {
		return 0
	}
	return li.Load1
}

// CPUTimes implements sensors.Host. Jiffies are converted to seconds;
// iowait/irq/etc. are folded into Idle and Sys respectively is left as
// reported — the vmstat sensor only needs consistent fractions.
func (h *Host) CPUTimes() sensors.CPUTimes {
	st, err := h.readStat()
	if err != nil {
		return sensors.CPUTimes{}
	}
	return sensors.CPUTimes{
		User:  st.User / jiffiesPerSecond,
		Nice:  st.Nice / jiffiesPerSecond,
		Sys:   st.Sys / jiffiesPerSecond,
		Idle:  (st.Idle + st.Other) / jiffiesPerSecond,
		Total: st.Total() / jiffiesPerSecond,
	}
}

// NumCPUs implements sensors.Host: the number of per-CPU "cpuN" lines in
// /proc/stat.
func (h *Host) NumCPUs() int {
	b, err := os.ReadFile(h.procRoot + "/stat")
	if err != nil {
		return 1
	}
	n := CountCPUs(string(b))
	if n < 1 {
		return 1
	}
	return n
}

// RunQueue implements sensors.Host: the running count from /proc/loadavg
// minus this process's own runnable thread.
func (h *Host) RunQueue() int {
	li, err := h.readLoad()
	if err != nil {
		return 0
	}
	rq := li.Running - 1
	if rq < 0 {
		rq = 0
	}
	return rq
}

// RunSpin implements sensors.Host: it pins a goroutine to an OS thread,
// spins for the requested wall time, and reports the thread's CPU time
// (getrusage(RUSAGE_THREAD)) over the wall time — the NWS probe process.
func (h *Host) RunSpin(wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	done := make(chan float64, 1)
	go func() {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
		var before, after syscall.Rusage
		start := time.Now()
		if err := syscall.Getrusage(rusageThread, &before); err != nil {
			done <- 0
			return
		}
		deadline := start.Add(time.Duration(wall * float64(time.Second)))
		sink := 0
		for time.Now().Before(deadline) {
			for i := 0; i < 1<<14; i++ {
				sink += i
			}
		}
		_ = sink
		elapsed := time.Since(start).Seconds()
		if err := syscall.Getrusage(rusageThread, &after); err != nil || elapsed <= 0 {
			done <- 0
			return
		}
		cpu := tvSec(after.Utime) + tvSec(after.Stime) - tvSec(before.Utime) - tvSec(before.Stime)
		frac := cpu / elapsed
		if frac > 1 {
			frac = 1
		}
		if frac < 0 {
			frac = 0
		}
		done <- frac
	}()
	return <-done
}

func tvSec(tv syscall.Timeval) float64 {
	return float64(tv.Sec) + float64(tv.Usec)/1e6
}

var _ sensors.Host = (*Host)(nil)
