package prochost

import (
	"math"
	"testing"
)

func TestParseLoadAvg(t *testing.T) {
	li, err := ParseLoadAvg("0.52 0.58 0.59 2/345 12345\n")
	if err != nil {
		t.Fatal(err)
	}
	if li.Load1 != 0.52 || li.Load5 != 0.58 || li.Load15 != 0.59 {
		t.Fatalf("loads = %+v", li)
	}
	if li.Running != 2 || li.Total != 345 {
		t.Fatalf("run queue = %+v", li)
	}
}

func TestParseLoadAvgErrors(t *testing.T) {
	cases := []string{
		"",
		"0.5 0.5 0.5",       // too few fields
		"x 0.5 0.5 1/2 3",   // bad load1
		"0.5 x 0.5 1/2 3",   // bad load5
		"0.5 0.5 x 1/2 3",   // bad load15
		"0.5 0.5 0.5 12 3",  // no slash
		"0.5 0.5 0.5 a/2 3", // bad running
		"0.5 0.5 0.5 1/b 3", // bad total
	}
	for _, c := range cases {
		if _, err := ParseLoadAvg(c); err == nil {
			t.Errorf("ParseLoadAvg(%q) succeeded", c)
		}
	}
}

func TestParseStat(t *testing.T) {
	content := `cpu  74608 2520 24433 1117073 6176 4054 0 0 0 0
cpu0 37304 1260 12216 558536 3088 2027 0 0 0 0
intr 12345
`
	st, err := ParseStat(content)
	if err != nil {
		t.Fatal(err)
	}
	if st.User != 74608 || st.Nice != 2520 || st.Sys != 24433 || st.Idle != 1117073 {
		t.Fatalf("stat = %+v", st)
	}
	wantOther := 6176.0 + 4054
	if math.Abs(st.Other-wantOther) > 1e-9 {
		t.Fatalf("Other = %v, want %v", st.Other, wantOther)
	}
	wantTotal := 74608.0 + 2520 + 24433 + 1117073 + wantOther
	if math.Abs(st.Total()-wantTotal) > 1e-9 {
		t.Fatalf("Total = %v, want %v", st.Total(), wantTotal)
	}
}

func TestParseStatMinimalFields(t *testing.T) {
	st, err := ParseStat("cpu 1 2 3 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if st.Other != 0 || st.Total() != 10 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestParseStatErrors(t *testing.T) {
	cases := []string{
		"",
		"cpu0 1 2 3 4\n",  // no aggregate line
		"cpu 1 2 3\n",     // too few fields
		"cpu 1 2 x 4 5\n", // bad number
	}
	for _, c := range cases {
		if _, err := ParseStat(c); err == nil {
			t.Errorf("ParseStat(%q) succeeded", c)
		}
	}
}

func TestCountCPUs(t *testing.T) {
	content := "cpu  1 2 3 4\ncpu0 1 1 1 1\ncpu1 1 1 1 1\ncpu15 1 1 1 1\nintr 5\n"
	if got := CountCPUs(content); got != 3 {
		t.Fatalf("CountCPUs = %d, want 3", got)
	}
	if got := CountCPUs("cpu 1 2 3 4\n"); got != 0 {
		t.Fatalf("CountCPUs(aggregate only) = %d, want 0", got)
	}
	if got := CountCPUs(""); got != 0 {
		t.Fatalf("CountCPUs(empty) = %d", got)
	}
}
