// Package prochost implements the sensors.Host interface for the live Linux
// machine the library runs on, reading /proc/loadavg and /proc/stat — the
// modern equivalents of the uptime and vmstat readings the paper's sensors
// used — and running real spinning probe processes measured with getrusage,
// exactly as the NWS CPU sensor did.
//
// Availability on a live multi-core host is expressed as the fraction of one
// CPU a full-priority thread can obtain, matching the paper's uniprocessor
// setting.
package prochost

import (
	"fmt"
	"strconv"
	"strings"
)

// LoadInfo is the parsed content of /proc/loadavg.
type LoadInfo struct {
	Load1, Load5, Load15 float64
	Running, Total       int // runnable entities / total entities
}

// ParseLoadAvg parses the content of /proc/loadavg, e.g.
// "0.52 0.58 0.59 2/345 12345".
func ParseLoadAvg(content string) (LoadInfo, error) {
	fields := strings.Fields(content)
	if len(fields) < 4 {
		return LoadInfo{}, fmt.Errorf("prochost: malformed loadavg %q", content)
	}
	var li LoadInfo
	var err error
	if li.Load1, err = strconv.ParseFloat(fields[0], 64); err != nil {
		return LoadInfo{}, fmt.Errorf("prochost: loadavg load1: %w", err)
	}
	if li.Load5, err = strconv.ParseFloat(fields[1], 64); err != nil {
		return LoadInfo{}, fmt.Errorf("prochost: loadavg load5: %w", err)
	}
	if li.Load15, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return LoadInfo{}, fmt.Errorf("prochost: loadavg load15: %w", err)
	}
	rt := strings.SplitN(fields[3], "/", 2)
	if len(rt) != 2 {
		return LoadInfo{}, fmt.Errorf("prochost: malformed run-queue field %q", fields[3])
	}
	if li.Running, err = strconv.Atoi(rt[0]); err != nil {
		return LoadInfo{}, fmt.Errorf("prochost: run-queue running: %w", err)
	}
	if li.Total, err = strconv.Atoi(rt[1]); err != nil {
		return LoadInfo{}, fmt.Errorf("prochost: run-queue total: %w", err)
	}
	return li, nil
}

// CountCPUs returns the number of per-CPU "cpuN" lines in /proc/stat
// content (0 when none are present).
func CountCPUs(content string) int {
	n := 0
	for _, line := range strings.Split(content, "\n") {
		if len(line) > 4 && strings.HasPrefix(line, "cpu") && line[3] >= '0' && line[3] <= '9' {
			n++
		}
	}
	return n
}

// StatTimes is the parsed aggregate "cpu" line of /proc/stat, in jiffies.
type StatTimes struct {
	User, Nice, Sys, Idle float64
	Other                 float64 // iowait + irq + softirq + steal + ...
}

// Total returns the sum of all accounted jiffies.
func (s StatTimes) Total() float64 { return s.User + s.Nice + s.Sys + s.Idle + s.Other }

// ParseStat parses the content of /proc/stat, extracting the aggregate
// "cpu " line.
func ParseStat(content string) (StatTimes, error) {
	for _, line := range strings.Split(content, "\n") {
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 5 {
			return StatTimes{}, fmt.Errorf("prochost: malformed cpu line %q", line)
		}
		vals := make([]float64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return StatTimes{}, fmt.Errorf("prochost: cpu line field %q: %w", f, err)
			}
			vals = append(vals, v)
		}
		st := StatTimes{User: vals[0], Nice: vals[1], Sys: vals[2], Idle: vals[3]}
		for _, v := range vals[4:] {
			st.Other += v
		}
		return st, nil
	}
	return StatTimes{}, fmt.Errorf("prochost: no aggregate cpu line in /proc/stat")
}
