//go:build linux

package prochost

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"nwscpu/internal/sensors"
)

// fixtureDir builds a fake /proc tree.
func fixtureDir(t *testing.T, loadavg, stat string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "loadavg"), []byte(loadavg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(stat), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestNewAtFixture(t *testing.T) {
	dir := fixtureDir(t, "1.25 0.80 0.50 3/200 999\n", "cpu 100 20 30 850 0 0 0\n")
	h, err := NewAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.LoadAvg(); got != 1.25 {
		t.Fatalf("LoadAvg = %v", got)
	}
	if got := h.RunQueue(); got != 2 { // 3 running minus ourselves
		t.Fatalf("RunQueue = %v", got)
	}
	ct := h.CPUTimes()
	if ct.User != 1.0 || ct.Nice != 0.2 || ct.Sys != 0.3 || ct.Idle != 8.5 {
		t.Fatalf("CPUTimes = %+v", ct)
	}
	if ct.Total != 10 {
		t.Fatalf("Total = %v", ct.Total)
	}
}

func TestNewAtMissingFiles(t *testing.T) {
	if _, err := NewAt(t.TempDir()); err == nil {
		t.Fatal("missing fixture files accepted")
	}
}

func TestRunQueueNeverNegative(t *testing.T) {
	dir := fixtureDir(t, "0.0 0.0 0.0 0/100 1\n", "cpu 1 0 0 9\n")
	h, err := NewAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.RunQueue(); got != 0 {
		t.Fatalf("RunQueue = %v, want 0", got)
	}
}

func TestRealProc(t *testing.T) {
	h, err := New()
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	if l := h.LoadAvg(); l < 0 {
		t.Fatalf("LoadAvg = %v", l)
	}
	ct := h.CPUTimes()
	if ct.Total <= 0 {
		t.Fatalf("CPUTimes = %+v", ct)
	}
	if rq := h.RunQueue(); rq < 0 {
		t.Fatalf("RunQueue = %v", rq)
	}
}

func TestNowAdvances(t *testing.T) {
	h, err := New()
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	t0 := h.Now()
	time.Sleep(20 * time.Millisecond)
	if h.Now() <= t0 {
		t.Fatal("Now did not advance")
	}
}

func TestRunSpinOnRealHost(t *testing.T) {
	if testing.Short() {
		t.Skip("spins the CPU")
	}
	h, err := New()
	if err != nil {
		t.Skipf("no /proc: %v", err)
	}
	frac := h.RunSpin(0.2)
	if frac < 0 || frac > 1 {
		t.Fatalf("RunSpin fraction = %v", frac)
	}
	// On any functioning machine a 200ms spin should obtain some CPU.
	if frac < 0.05 {
		t.Fatalf("RunSpin fraction = %v, implausibly low", frac)
	}
	if got := h.RunSpin(0); got != 0 {
		t.Fatalf("RunSpin(0) = %v", got)
	}
}

func TestSensorsAgainstFixtures(t *testing.T) {
	dir := fixtureDir(t, "1.0 1.0 1.0 1/10 5\n", "cpu 500 0 100 400 0\n")
	h, err := NewAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	la := sensors.NewLoadAvgSensor(h)
	if got := la.Measure(); got != 0.5 {
		t.Fatalf("load-average availability = %v, want 0.5", got)
	}
	vm := sensors.NewVmstatSensor(h, 0)
	if got := vm.Measure(); got < 0 || got > 1 {
		t.Fatalf("vmstat first measurement = %v", got)
	}
}
