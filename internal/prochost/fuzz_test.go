package prochost

import "testing"

// Fuzzing the /proc parsers: they must never panic and must either return an
// error or a well-formed result on arbitrary input. Run with
// `go test -fuzz FuzzParseLoadAvg ./internal/prochost` for exploration; the
// seed corpus below runs as part of the regular test suite.

func FuzzParseLoadAvg(f *testing.F) {
	for _, seed := range []string{
		"0.52 0.58 0.59 2/345 12345",
		"",
		"1 2 3 4/5 6",
		"a b c d/e f",
		"0.5 0.5 0.5 12 3",
		"9e999 0 0 1/1 1",
		"0.1 0.1 0.1 -2/-5 0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		li, err := ParseLoadAvg(content)
		if err != nil {
			return
		}
		if li.Load1 != li.Load1 { // NaN check without importing math
			t.Fatalf("parsed NaN load from %q", content)
		}
	})
}

func FuzzParseStat(f *testing.F) {
	for _, seed := range []string{
		"cpu  74608 2520 24433 1117073 6176 4054 0 0 0 0\ncpu0 1 1 1 1\n",
		"cpu 1 2 3 4",
		"",
		"cpu 1 2 3",
		"cpu a b c d",
		"intr 5\ncpu 1 2 3 4\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		st, err := ParseStat(content)
		if err != nil {
			return
		}
		if st.Total() != st.Total() {
			t.Fatalf("parsed NaN total from %q", content)
		}
		_ = CountCPUs(content)
	})
}
