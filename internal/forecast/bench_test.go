package forecast

import (
	"math/rand"
	"testing"
)

// Microbenchmarks backing BENCH_forecast.json (make bench-forecast): the
// whole-engine Update kernel in both selection modes, the empirical
// prediction interval, and every DefaultBank member in steady state
// (window full, measuring one Update+Forecast round per iteration).
//
// cmd/nwsperf drives the same workloads through testing.Benchmark to emit
// the machine-readable trajectory file; keep the two in sync.

// benchValues returns a deterministic availability-like series in [0,1).
func benchValues(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	return vals
}

func BenchmarkEngineUpdate(b *testing.B) {
	e := NewDefaultEngine()
	vals := benchValues(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Update(vals[i%len(vals)])
	}
}

func BenchmarkEngineUpdateWindowed(b *testing.B) {
	e := NewWindowedEngine(ByMAE, 50, DefaultBank()...)
	vals := benchValues(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Update(vals[i%len(vals)])
	}
}

func BenchmarkEngineForecast(b *testing.B) {
	e := NewDefaultEngine()
	for _, v := range benchValues(1000) {
		e.Update(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Forecast(); !ok {
			b.Fatal("no forecast")
		}
	}
}

func BenchmarkEngineForecastInterval(b *testing.B) {
	e := NewDefaultEngine()
	for _, v := range benchValues(1000) {
		e.Update(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.ForecastInterval(0.9); !ok {
			b.Fatal("no interval")
		}
	}
}

// BenchmarkBankMember measures one Update+Forecast round per iteration for
// each DefaultBank member individually, in steady state (window full).
func BenchmarkBankMember(b *testing.B) {
	vals := benchValues(1024)
	for _, f := range DefaultBank() {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			for _, v := range vals[:128] { // fill windows before timing
				f.Update(v)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Update(vals[i%len(vals)])
				f.Forecast()
			}
		})
	}
}
