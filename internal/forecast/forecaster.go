// Package forecast implements the Network Weather Service forecasting
// methodology of Wolski (Cluster Computing 1998) as used in the HPDC 1999
// CPU-availability study: a bank of computationally inexpensive one-step-
// ahead predictors — mean-based, median-based and exponential-smoothing
// based, each over several window sizes — plus the dynamic selector that, at
// every step, forwards the prediction of whichever bank member has been most
// accurate over the measurements seen so far.
//
// All forecasters share the same contract: Update feeds the next measurement
// of the series; Forecast returns the prediction for the measurement that
// will follow. A forecaster reports ok == false until it has enough history
// to predict (generally a single value).
package forecast

// Forecaster is a one-step-ahead predictor over a scalar time series.
type Forecaster interface {
	// Name identifies the method (e.g. "sw_mean_20") in reports.
	Name() string
	// Update appends the next measurement of the series.
	Update(v float64)
	// Forecast predicts the next measurement. ok is false until the
	// forecaster has seen enough history.
	Forecast() (v float64, ok bool)
}

// LastValue predicts that the next measurement equals the current one.
type LastValue struct {
	last float64
	seen bool
}

// NewLastValue returns the last-value predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements Forecaster.
func (f *LastValue) Name() string { return "last_value" }

// Update implements Forecaster.
func (f *LastValue) Update(v float64) { f.last, f.seen = v, true }

// Forecast implements Forecaster.
func (f *LastValue) Forecast() (float64, bool) { return f.last, f.seen }

// RunningMean predicts the mean of the entire history.
type RunningMean struct {
	sum float64
	n   int
}

// NewRunningMean returns the running (cumulative) mean predictor.
func NewRunningMean() *RunningMean { return &RunningMean{} }

// Name implements Forecaster.
func (f *RunningMean) Name() string { return "run_mean" }

// Update implements Forecaster.
func (f *RunningMean) Update(v float64) { f.sum += v; f.n++ }

// Forecast implements Forecaster.
func (f *RunningMean) Forecast() (float64, bool) {
	if f.n == 0 {
		return 0, false
	}
	return f.sum / float64(f.n), true
}

// ExpSmooth predicts with simple exponential smoothing,
// s <- s + gain*(v - s).
type ExpSmooth struct {
	name  string
	gain  float64
	state float64
	seen  bool
}

// NewExpSmooth returns an exponential-smoothing predictor with the given
// gain in (0, 1]. It panics on an out-of-range gain.
func NewExpSmooth(name string, gain float64) *ExpSmooth {
	if gain <= 0 || gain > 1 {
		panic("forecast: ExpSmooth gain must be in (0,1]")
	}
	return &ExpSmooth{name: name, gain: gain}
}

// Name implements Forecaster.
func (f *ExpSmooth) Name() string { return f.name }

// Update implements Forecaster.
func (f *ExpSmooth) Update(v float64) {
	if !f.seen {
		f.state, f.seen = v, true
		return
	}
	f.state += f.gain * (v - f.state)
}

// Forecast implements Forecaster.
func (f *ExpSmooth) Forecast() (float64, bool) { return f.state, f.seen }

// TriggLeach is exponential smoothing whose gain adapts by the Trigg-Leach
// tracking signal: gain = |smoothed error| / |smoothed absolute error|. It
// reacts quickly to level shifts while smoothing stationary noise.
type TriggLeach struct {
	phi   float64 // smoothing constant for the tracking signal
	state float64
	e     float64 // smoothed signed error
	ae    float64 // smoothed absolute error
	seen  bool
}

// NewTriggLeach returns the adaptive-gain smoother. phi is the smoothing
// constant of the tracking signal (0.1–0.3 typical); it panics if phi is not
// in (0, 1].
func NewTriggLeach(phi float64) *TriggLeach {
	if phi <= 0 || phi > 1 {
		panic("forecast: TriggLeach phi must be in (0,1]")
	}
	return &TriggLeach{phi: phi}
}

// Name implements Forecaster.
func (f *TriggLeach) Name() string { return "adapt_exp" }

// Update implements Forecaster.
func (f *TriggLeach) Update(v float64) {
	if !f.seen {
		f.state, f.seen = v, true
		return
	}
	err := v - f.state
	f.e += f.phi * (err - f.e)
	abs := err
	if abs < 0 {
		abs = -abs
	}
	f.ae += f.phi * (abs - f.ae)
	// When the smoothed absolute error is zero (a perfectly flat stretch)
	// the tracking ratio would be 0/0; fall back to the documented 0.5 gain.
	gain := 0.5
	if f.ae > 0 {
		gain = f.e / f.ae
		if gain < 0 {
			gain = -gain
		}
		if gain > 1 {
			gain = 1
		}
	}
	f.state += gain * (v - f.state)
}

// Forecast implements Forecaster.
func (f *TriggLeach) Forecast() (float64, bool) { return f.state, f.seen }

// Holt is double exponential smoothing (Holt's linear method): it smooths
// both the level and the trend of the series,
//
//	level <- alpha*v + (1-alpha)*(level + trend)
//	trend <- beta*(level - prevLevel) + (1-beta)*trend
//
// and forecasts level + trend. It tracks availability ramps (a machine
// gradually filling with work) better than simple smoothing.
type Holt struct {
	name         string
	alpha, beta  float64
	level, trend float64
	n            int
}

// NewHolt returns a Holt forecaster. Both gains must be in (0, 1].
func NewHolt(name string, alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic("forecast: Holt gains must be in (0,1]")
	}
	return &Holt{name: name, alpha: alpha, beta: beta}
}

// Name implements Forecaster.
func (f *Holt) Name() string { return f.name }

// Update implements Forecaster.
func (f *Holt) Update(v float64) {
	switch f.n {
	case 0:
		f.level = v
	case 1:
		f.trend = v - f.level
		f.level = v
	default:
		prev := f.level
		f.level = f.alpha*v + (1-f.alpha)*(f.level+f.trend)
		f.trend = f.beta*(f.level-prev) + (1-f.beta)*f.trend
	}
	f.n++
}

// Forecast implements Forecaster.
func (f *Holt) Forecast() (float64, bool) {
	if f.n == 0 {
		return 0, false
	}
	if f.n == 1 {
		return f.level, true
	}
	return f.level + f.trend, true
}

// Trend predicts last + damping*(last - previous): a first-difference
// gradient predictor, damped to avoid overshooting on noisy series.
type Trend struct {
	damping    float64
	last, prev float64
	n          int
}

// NewTrend returns the damped gradient predictor. damping is typically in
// (0, 1]; it panics when damping is not positive.
func NewTrend(damping float64) *Trend {
	if damping <= 0 {
		panic("forecast: Trend damping must be positive")
	}
	return &Trend{damping: damping}
}

// Name implements Forecaster.
func (f *Trend) Name() string { return "trend" }

// Update implements Forecaster.
func (f *Trend) Update(v float64) {
	f.prev, f.last = f.last, v
	if f.n < 2 {
		f.n++
	}
}

// Forecast implements Forecaster.
func (f *Trend) Forecast() (float64, bool) {
	switch f.n {
	case 0:
		return 0, false
	case 1:
		return f.last, true
	default:
		return f.last + f.damping*(f.last-f.prev), true
	}
}

// compile-time interface checks
var (
	_ Forecaster = (*LastValue)(nil)
	_ Forecaster = (*RunningMean)(nil)
	_ Forecaster = (*ExpSmooth)(nil)
	_ Forecaster = (*TriggLeach)(nil)
	_ Forecaster = (*Trend)(nil)
	_ Forecaster = (*Holt)(nil)
	_ Forecaster = (*SlidingMean)(nil)
	_ Forecaster = (*SlidingMedian)(nil)
	_ Forecaster = (*TrimmedMean)(nil)
	_ Forecaster = (*AdaptiveWindow)(nil)
)
