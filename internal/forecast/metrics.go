package forecast

import "nwscpu/internal/metrics"

// Engine hot-path instrumentation. Update runs once per measurement for
// every engine in the process (the experiment harness drives millions), so
// only lock-free counter increments are taken here — latency histograms
// live at the service layer (internal/nwsnet), where a call already costs
// a network round trip.
var (
	mEngineUpdates = metrics.NewCounter(
		"nws_forecast_engine_updates_total",
		"Measurements absorbed by forecasting engines (all engines in the process).")
	mEngineForecasts = metrics.NewCounter(
		"nws_forecast_engine_forecasts_total",
		"Forecasts served to Engine.Forecast callers (selector-internal reads excluded).")
	mEngineEngines = metrics.NewCounter(
		"nws_forecast_engines_created_total",
		"Forecasting engines constructed.")
)
