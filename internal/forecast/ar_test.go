package forecast

import (
	"math"
	"math/rand"
	"testing"

	"nwscpu/internal/fgn"
)

func TestARValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewAR(0, 100, 10) },
		func() { NewAR(5, 10, 10) }, // window < 4*order
		func() { NewAR(2, 100, 0) },
		func() { NewSeasonal(1, 3) },
		func() { NewSeasonal(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestARConstantSeries(t *testing.T) {
	f := NewAR(4, 64, 8)
	if _, ok := f.Forecast(); ok {
		t.Fatal("empty AR should not forecast")
	}
	for i := 0; i < 100; i++ {
		f.Update(0.6)
	}
	v, ok := f.Forecast()
	if !ok || math.Abs(v-0.6) > 1e-9 {
		t.Fatalf("constant AR forecast = %v, %v", v, ok)
	}
}

func TestARBeforeFitFallsBackToLast(t *testing.T) {
	f := NewAR(4, 64, 8)
	f.Update(0.3)
	v, ok := f.Forecast()
	if !ok || v != 0.3 {
		t.Fatalf("pre-fit forecast = %v, %v, want last value", v, ok)
	}
}

func TestARRecoversAR1Process(t *testing.T) {
	// x_t = 0.8 x_{t-1} + eps: the AR(2) fit should recover phi1 ~ 0.8 and
	// have clearly lower one-step error than the running mean.
	rng := rand.New(rand.NewSource(11))
	var xs []float64
	x := 0.0
	for i := 0; i < 6000; i++ {
		x = 0.8*x + rng.NormFloat64()
		xs = append(xs, x)
	}
	arRes, err := Evaluate(NewAR(2, 200, 10), xs)
	if err != nil {
		t.Fatal(err)
	}
	meanRes, err := Evaluate(NewRunningMean(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if arRes.MAE >= meanRes.MAE*0.75 {
		t.Fatalf("AR MAE %v not clearly below running mean %v on AR(1) data",
			arRes.MAE, meanRes.MAE)
	}
	// Theoretical optimum: MAE of eps ~ E|N(0,1)| = 0.798.
	if arRes.MAE > 0.9 {
		t.Fatalf("AR MAE %v, want near 0.8 (innovation MAE)", arRes.MAE)
	}
}

func TestARBeatsLastValueOnAntipersistentNoise(t *testing.T) {
	// Antipersistent fGn (H = 0.25) has negative lag-1 correlation that only
	// a model-based predictor exploits.
	rng := rand.New(rand.NewSource(12))
	xs, err := fgn.Generate(rng, 0.25, 8192)
	if err != nil {
		t.Fatal(err)
	}
	arRes, err := Evaluate(NewAR(4, 200, 10), xs)
	if err != nil {
		t.Fatal(err)
	}
	lastRes, err := Evaluate(NewLastValue(), xs)
	if err != nil {
		t.Fatal(err)
	}
	if arRes.MAE >= lastRes.MAE {
		t.Fatalf("AR MAE %v not below last-value %v on antipersistent noise",
			arRes.MAE, lastRes.MAE)
	}
}

func TestLevinsonDurbinKnownSystem(t *testing.T) {
	// AR(1) with phi = 0.5, sigma = 1: gamma(k) = phi^k / (1 - phi^2).
	phi := 0.5
	g0 := 1 / (1 - phi*phi)
	r := []float64{g0, phi * g0, phi * phi * g0}
	coef := levinsonDurbin(r)
	if math.Abs(coef[0]-phi) > 1e-9 {
		t.Fatalf("phi1 = %v, want %v", coef[0], phi)
	}
	if math.Abs(coef[1]) > 1e-9 {
		t.Fatalf("phi2 = %v, want 0", coef[1])
	}
}

func TestSeasonalPredictsCycle(t *testing.T) {
	// Perfect period-24 cycle: once two periods are seen, prediction error
	// should be zero.
	f := NewSeasonal(24, 4)
	cycle := func(i int) float64 { return 0.5 + 0.4*math.Sin(2*math.Pi*float64(i)/24) }
	for i := 0; i < 48; i++ {
		f.Update(cycle(i))
	}
	for i := 48; i < 96; i++ {
		pred, ok := f.Forecast()
		if !ok {
			t.Fatal("no forecast")
		}
		if math.Abs(pred-cycle(i)) > 1e-9 {
			t.Fatalf("seasonal forecast at %d = %v, want %v", i, pred, cycle(i))
		}
		f.Update(cycle(i))
	}
}

func TestSeasonalFallbackBeforeFullPeriod(t *testing.T) {
	f := NewSeasonal(10, 2)
	if _, ok := f.Forecast(); ok {
		t.Fatal("empty seasonal should not forecast")
	}
	f.Update(0.4)
	v, ok := f.Forecast()
	if !ok || v != 0.4 {
		t.Fatalf("fallback = %v, %v", v, ok)
	}
}

func TestSeasonalBeatsWindowsOnCyclicSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var xs []float64
	for i := 0; i < 2000; i++ {
		xs = append(xs, 0.5+0.35*math.Sin(2*math.Pi*float64(i)/100)+rng.NormFloat64()*0.02)
	}
	res, report, err := EvaluateEngine(func() *Engine { return NewExtendedEngine(100) }, xs)
	if err != nil {
		t.Fatal(err)
	}
	if report[0].Name != "seasonal_100" {
		t.Fatalf("best method on cyclic series = %s, want seasonal_100 (report head MAE %v)",
			report[0].Name, report[0].MAE)
	}
	if res.MAE > 0.05 {
		t.Fatalf("engine MAE on cyclic series = %v", res.MAE)
	}
}

func TestExtendedBankUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range ExtendedBank(8640) {
		if seen[f.Name()] {
			t.Fatalf("duplicate name %q", f.Name())
		}
		seen[f.Name()] = true
	}
	if len(ExtendedBank(0)) != len(DefaultBank())+3 {
		t.Fatal("seasonal should be omitted for period < 2")
	}
}

func TestForecastInterval(t *testing.T) {
	e := NewDefaultEngine()
	if _, ok := e.ForecastInterval(0.9); ok {
		t.Fatal("interval before data")
	}
	rng := rand.New(rand.NewSource(14))
	// Stationary noise around 0.6 with sd 0.05.
	var inside, total int
	for i := 0; i < 3000; i++ {
		v := 0.6 + rng.NormFloat64()*0.05
		if iv, ok := e.ForecastInterval(0.9); ok && iv.N > 50 {
			total++
			if v >= iv.Lo && v <= iv.Hi {
				inside++
			}
			if iv.Lo > iv.Prediction.Value || iv.Hi < iv.Prediction.Value {
				t.Fatalf("interval %v..%v excludes point forecast %v", iv.Lo, iv.Hi, iv.Prediction.Value)
			}
		}
		e.Update(v)
	}
	cov := float64(inside) / float64(total)
	if cov < 0.85 || cov > 0.97 {
		t.Fatalf("empirical coverage %v, want ~0.90", cov)
	}
}

func TestForecastIntervalClampsCoverage(t *testing.T) {
	e := NewDefaultEngine()
	for i := 0; i < 50; i++ {
		e.Update(0.5)
	}
	iv, ok := e.ForecastInterval(-2)
	if !ok {
		t.Fatal("no interval")
	}
	if iv.Lo > iv.Hi {
		t.Fatalf("degenerate interval %v..%v", iv.Lo, iv.Hi)
	}
	// Constant series: band collapses onto the forecast.
	if math.Abs(iv.Lo-0.5) > 1e-9 || math.Abs(iv.Hi-0.5) > 1e-9 {
		t.Fatalf("constant-series interval %v..%v, want 0.5..0.5", iv.Lo, iv.Hi)
	}
}

func TestHoltValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHolt("h", 0, 0.5) },
		func() { NewHolt("h", 0.5, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHoltTracksLinearRamp(t *testing.T) {
	f := NewHolt("holt", 0.5, 0.5)
	if _, ok := f.Forecast(); ok {
		t.Fatal("empty Holt should not forecast")
	}
	// Perfect linear ramp: after warm-up, the one-step forecast is exact.
	for i := 0; i < 50; i++ {
		f.Update(float64(i) * 0.01)
	}
	pred, ok := f.Forecast()
	if !ok {
		t.Fatal("no forecast")
	}
	if math.Abs(pred-0.50) > 1e-6 {
		t.Fatalf("ramp forecast = %v, want 0.50", pred)
	}
}

func TestHoltBeatsSimpleSmoothingOnRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var vals []float64
	for i := 0; i < 2000; i++ {
		vals = append(vals, 0.001*float64(i)+rng.NormFloat64()*0.01)
	}
	holtRes, err := Evaluate(NewHolt("holt", 0.3, 0.1), vals)
	if err != nil {
		t.Fatal(err)
	}
	expRes, err := Evaluate(NewExpSmooth("exp", 0.3), vals)
	if err != nil {
		t.Fatal(err)
	}
	if holtRes.MAE >= expRes.MAE {
		t.Fatalf("Holt MAE %v not below simple smoothing %v on trending series",
			holtRes.MAE, expRes.MAE)
	}
}

func TestHoltSinglePointFallback(t *testing.T) {
	f := NewHolt("holt", 0.5, 0.5)
	f.Update(0.7)
	v, ok := f.Forecast()
	if !ok || v != 0.7 {
		t.Fatalf("single-point Holt = %v, %v", v, ok)
	}
}
