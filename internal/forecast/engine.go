package forecast

import (
	"fmt"
	"math"
	"sort"

	"nwscpu/internal/series"
)

// SelectBy chooses the criterion the engine uses to rank its forecasters.
type SelectBy int

const (
	// ByMAE ranks forecasters by cumulative mean absolute error (the NWS
	// default and the error metric reported throughout the paper).
	ByMAE SelectBy = iota
	// ByMSE ranks forecasters by cumulative mean squared error.
	ByMSE
)

// tracker pairs a Forecaster with its running one-step-ahead error record.
// With a selection window configured it also keeps the recent absolute and
// squared errors in rings so the selector can rank by recent accuracy, as
// the paper describes ("most accurate over the recent set of measurements").
//
// All selection state is incremental: the windowed error sums are maintained
// on push/evict instead of re-summed from the rings on every score, so
// scoring a tracker is O(1) regardless of the selection window.
//
// Floating-point addition is not associative, so a maintained add/subtract
// sum can drift a few ulps away from the freshly re-summed ring the previous
// implementation scored with — enough to flip the argmin between two members
// whose windows hold identical errors (selection must stay bit-compatible:
// the paper's selection-dynamics tables ride on these tie-breaks). Each
// tracker therefore also carries a running bound on |maintained − exact|
// (standard FP error analysis: each add/subtract errs by at most one ulp of
// its result). When the bound cannot separate the best member from a rival,
// the engine resynchronizes the sums from the rings — bitwise the seed's
// fresh summation — and re-ranks; away from such near-ties the bound proves
// the fast path picks the identical member. Sums are additionally resynced
// every Cap evictions so the bound (and drift) stays small forever.
type tracker struct {
	f          Forecaster
	pending    float64 // forecast issued for the next value
	hasPending bool
	sumAbs     float64
	sumSq      float64
	n          int

	winAbs    *series.Ring // nil = cumulative selection
	winSq     *series.Ring
	winSumAbs float64
	winSumSq  float64
	winErrAbs float64 // bound on |winSumAbs - exact window sum|
	winErrSq  float64
	winEvicts int // evictions since the last sum resynchronization
}

// ulp is the double-precision unit roundoff (2^-52).
const ulp = 0x1p-52

func (t *tracker) record(absErr, sqErr float64) {
	t.sumAbs += absErr
	t.sumSq += sqErr
	t.n++
	if t.winAbs == nil {
		return
	}
	if t.winAbs.Full() {
		t.winSumAbs -= t.winAbs.At(0)
		t.winErrAbs += ulp * math.Abs(t.winSumAbs)
		t.winSumSq -= t.winSq.At(0)
		t.winErrSq += ulp * math.Abs(t.winSumSq)
		t.winEvicts++
	}
	t.winAbs.Push(absErr)
	t.winSq.Push(sqErr)
	t.winSumAbs += absErr
	t.winErrAbs += ulp * math.Abs(t.winSumAbs)
	t.winSumSq += sqErr
	t.winErrSq += ulp * math.Abs(t.winSumSq)
	if t.winEvicts >= t.winAbs.Cap() {
		t.resyncWin()
	}
}

// resyncWin replaces the maintained window sums with fresh re-sums of the
// rings (insertion order — bitwise the summation the seed selector used)
// and resets the drift bounds to a fresh sum's own worst-case roundoff.
func (t *tracker) resyncWin() {
	if t.winAbs == nil {
		return
	}
	n := float64(t.winAbs.Len())
	t.winSumAbs = ringSum(t.winAbs)
	t.winSumSq = ringSum(t.winSq)
	t.winErrAbs = ulp * n * math.Abs(t.winSumAbs)
	t.winErrSq = ulp * n * math.Abs(t.winSumSq)
	t.winEvicts = 0
}

// ringSum re-sums a ring's contents in insertion order (the same summation
// the seed selector performed on every score).
func ringSum(r *series.Ring) float64 {
	var sum float64
	for i := 0; i < r.Len(); i++ {
		sum += r.At(i)
	}
	return sum
}

// scoreBound returns a conservative bound on how far score may sit from the
// score a fresh ring re-sum would produce: the maintained sum's drift bound,
// a fresh sum's own worst-case roundoff, and the dividing roundoff. Zero for
// cumulative trackers, whose sums are maintained with the exact operation
// sequence the seed used.
func (t *tracker) scoreBound(by SelectBy) float64 {
	if t.winAbs == nil || t.winAbs.Len() == 0 {
		return 0
	}
	n := float64(t.winAbs.Len())
	sum, drift := t.winSumAbs, t.winErrAbs
	if by == ByMSE {
		sum, drift = t.winSumSq, t.winErrSq
	}
	mag := math.Abs(sum) + drift
	return (drift+2*ulp*n*mag)/n + 2*ulp*(mag/n)
}

// score returns the selection criterion value: windowed recent error when a
// window is configured, else the cumulative error. O(1) either way.
func (t *tracker) score(by SelectBy) float64 {
	if t.winAbs != nil && t.winAbs.Len() > 0 {
		if by == ByMSE {
			return t.winSumSq / float64(t.winSq.Len())
		}
		return t.winSumAbs / float64(t.winAbs.Len())
	}
	if by == ByMSE {
		return t.mse()
	}
	return t.mae()
}

func (t *tracker) mae() float64 {
	if t.n == 0 {
		return math.Inf(1)
	}
	return t.sumAbs / float64(t.n)
}

func (t *tracker) mse() float64 {
	if t.n == 0 {
		return math.Inf(1)
	}
	return t.sumSq / float64(t.n)
}

// Prediction is the engine's one-step-ahead output.
type Prediction struct {
	Value  float64 // predicted next measurement
	Method string  // name of the forecaster that produced it
	MAE    float64 // that forecaster's cumulative mean absolute error
	MSE    float64 // that forecaster's cumulative mean squared error
}

// Engine is the NWS dynamic forecaster: it runs a bank of Forecasters in
// parallel over the same series, scores each one's one-step-ahead forecasts
// against the measurements that subsequently arrive, and forwards the
// prediction of the member with the lowest cumulative error. Wolski showed
// this choice tracks, and sometimes beats, the best single member.
//
// Selection is incremental: Update maintains every tracker's score and the
// best-member index in the same O(bank) pass that absorbs the measurement
// (amortized O(1) per bank member), and the index stays cached until the
// next Update — scores only change when a measurement arrives — so
// Forecast, BestMethod and ForecastInterval are O(1) and allocation-free.
//
// Engine is not safe for concurrent use; wrap it in a mutex if shared.
type Engine struct {
	trackers []*tracker
	selectBy SelectBy
	windowed bool // selection window configured (incremental sums in play)
	n        int  // measurements seen
	best     int  // cached index of the best-scoring tracker, -1 = none

	// The engine's own forwarded-forecast residuals, backing the empirical
	// prediction intervals of ForecastInterval.
	ownForecast float64
	ownPending  bool
	ownErrs     *series.OrderWindow

	// selections counts how often each member was the one the engine
	// forwarded (the NWS selection dynamics).
	selections map[string]int
}

// NewEngine builds an engine over the given forecasters with cumulative
// selection. It panics if the bank is empty or contains duplicate names
// (names key the reports).
func NewEngine(selectBy SelectBy, bank ...Forecaster) *Engine {
	return NewWindowedEngine(selectBy, 0, bank...)
}

// NewWindowedEngine builds an engine that ranks its members by their error
// over the most recent selectWindow scored forecasts (0 = entire history).
// A short window lets the selection react when the series' character
// changes; a long one resists noise.
func NewWindowedEngine(selectBy SelectBy, selectWindow int, bank ...Forecaster) *Engine {
	if len(bank) == 0 {
		panic("forecast: NewEngine needs at least one forecaster")
	}
	if selectWindow < 0 {
		panic("forecast: selection window must be >= 0")
	}
	seen := make(map[string]bool, len(bank))
	ts := make([]*tracker, len(bank))
	for i, f := range bank {
		if seen[f.Name()] {
			panic(fmt.Sprintf("forecast: duplicate forecaster name %q", f.Name()))
		}
		seen[f.Name()] = true
		ts[i] = &tracker{f: f}
		if selectWindow > 0 {
			ts[i].winAbs = series.NewRing(selectWindow)
			ts[i].winSq = series.NewRing(selectWindow)
		}
	}
	mEngineEngines.Inc()
	return &Engine{
		trackers:   ts,
		selectBy:   selectBy,
		windowed:   selectWindow > 0,
		best:       -1,
		selections: make(map[string]int),
	}
}

// DefaultBank returns the standard NWS-style forecaster complement: last
// value, running mean, sliding means and medians over several windows,
// trimmed means, exponential smoothing over several gains, adaptive-gain
// smoothing, adaptive windows, and a damped trend.
func DefaultBank() []Forecaster {
	return []Forecaster{
		NewLastValue(),
		NewRunningMean(),
		NewSlidingMean(5),
		NewSlidingMean(10),
		NewSlidingMean(20),
		NewSlidingMean(30),
		NewSlidingMean(50),
		NewSlidingMedian(5),
		NewSlidingMedian(10),
		NewSlidingMedian(20),
		NewSlidingMedian(30),
		NewSlidingMedian(50),
		NewTrimmedMean(30, 0.3),
		NewTrimmedMean(50, 0.2),
		NewExpSmooth("exp_05", 0.05),
		NewExpSmooth("exp_10", 0.10),
		NewExpSmooth("exp_20", 0.20),
		NewExpSmooth("exp_30", 0.30),
		NewExpSmooth("exp_50", 0.50),
		NewExpSmooth("exp_75", 0.75),
		NewExpSmooth("exp_90", 0.90),
		NewTriggLeach(0.2),
		NewAdaptiveWindowMean(5, 10, 20, 50),
		NewAdaptiveWindowMedian(5, 10, 20, 50),
		NewTrend(0.5),
	}
}

// NewDefaultEngine returns an Engine over DefaultBank selecting by MAE —
// the configuration evaluated in the paper.
func NewDefaultEngine() *Engine { return NewEngine(ByMAE, DefaultBank()...) }

// ExtendedBank is DefaultBank plus the model-based forecasters added beyond
// the paper: Yule-Walker AR(p) fits and a daily-cycle seasonal predictor
// (period in samples; 8640 is 24 hours of 10-second measurements).
func ExtendedBank(seasonalPeriod int) []Forecaster {
	bank := DefaultBank()
	bank = append(bank,
		NewAR(2, 120, 25),
		NewAR(8, 240, 25),
		NewHolt("holt_30_10", 0.3, 0.1),
	)
	if seasonalPeriod >= 2 {
		bank = append(bank, NewSeasonal(seasonalPeriod, 7))
	}
	return bank
}

// NewExtendedEngine returns an Engine over ExtendedBank selecting by MAE.
func NewExtendedEngine(seasonalPeriod int) *Engine {
	return NewEngine(ByMAE, ExtendedBank(seasonalPeriod)...)
}

// Update feeds the next measurement: every member's outstanding forecast is
// scored against v, then every member absorbs v. The best-member index is
// re-derived in the same pass — this is the only place scores change, so
// every query between Updates reads the cached selection.
func (e *Engine) Update(v float64) {
	mEngineUpdates.Inc()
	e.recordOwnError(v)
	best := -1
	bestScore := math.Inf(1)
	for i, t := range e.trackers {
		if t.hasPending {
			d := t.pending - v
			t.record(math.Abs(d), d*d)
		}
		t.f.Update(v)
		t.pending, t.hasPending = t.f.Forecast()
		if !t.hasPending {
			continue
		}
		score := t.score(e.selectBy)
		// Members with no scored forecasts yet (score == +Inf) still beat
		// "no forecast at all": fall back to the first pending one.
		if best == -1 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if e.windowed && best >= 0 && e.ambiguous(best, bestScore) {
		// A rival's score interval overlaps the leader's: the maintained
		// sums cannot prove which member a fresh re-sum would rank first
		// (typically an exact tie between members tracking the series
		// equally well). Resynchronize and re-rank on the fresh sums, which
		// reproduce the previous implementation's scores bit for bit.
		best = -1
		bestScore = math.Inf(1)
		for i, t := range e.trackers {
			t.resyncWin()
			if !t.hasPending {
				continue
			}
			if score := t.score(e.selectBy); best == -1 || score < bestScore {
				best, bestScore = i, score
			}
		}
	}
	e.best = best
	e.n++
	e.noteOwnForecast()
}

// ambiguous reports whether any rival tracker's score could, within the
// floating-point drift bounds, rank at or ahead of the current leader's.
func (e *Engine) ambiguous(best int, bestScore float64) bool {
	hi := bestScore + e.trackers[best].scoreBound(e.selectBy)
	for i, t := range e.trackers {
		if i == best || !t.hasPending {
			continue
		}
		if t.score(e.selectBy)-t.scoreBound(e.selectBy) <= hi {
			return true
		}
	}
	return false
}

// N returns the number of measurements seen.
func (e *Engine) N() int { return e.n }

// Forecast returns the prediction of the currently best-scoring member.
// ok is false until at least one member can forecast.
func (e *Engine) Forecast() (Prediction, bool) {
	mEngineForecasts.Inc()
	return e.forecast()
}

// forecast is the unmetered selection read used internally (and by the
// derived views BestMethod and ForecastInterval): the
// nws_forecast_engine_forecasts_total counter must count only forecasts
// served by Forecast itself, not the selector's own bookkeeping.
func (e *Engine) forecast() (Prediction, bool) {
	if e.best < 0 {
		return Prediction{}, false
	}
	t := e.trackers[e.best]
	return Prediction{Value: t.pending, Method: t.f.Name(), MAE: t.mae(), MSE: t.mse()}, true
}

// MethodError summarizes one bank member's accuracy.
type MethodError struct {
	Name string
	MAE  float64
	MSE  float64
	N    int
}

// Report returns the per-member error summary sorted by ascending MAE.
// Members that have not yet been scored report MAE and MSE of +Inf.
func (e *Engine) Report() []MethodError {
	out := make([]MethodError, len(e.trackers))
	for i, t := range e.trackers {
		out[i] = MethodError{Name: t.f.Name(), MAE: t.mae(), MSE: t.mse(), N: t.n}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAE < out[j].MAE })
	return out
}

// SelectionCounts returns how many times each member was the engine's
// forwarded choice, sorted by descending count — the selection dynamics the
// NWS papers report (one method rarely dominates; the lead changes as the
// series' character shifts). Ties break by ascending name, so the ordering
// is deterministic for a given series.
func (e *Engine) SelectionCounts() []MethodCount {
	out := make([]MethodCount, 0, len(e.selections))
	for name, n := range e.selections {
		out = append(out, MethodCount{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// MethodCount pairs a forecaster name with its selection count.
type MethodCount struct {
	Name  string
	Count int
}

// BestMethod returns the name of the member the engine would forward right
// now, or "" if none has forecast yet.
func (e *Engine) BestMethod() string {
	p, ok := e.forecast()
	if !ok {
		return ""
	}
	return p.Method
}
