package forecast

import (
	"fmt"

	"nwscpu/internal/series"
	"nwscpu/internal/stats"
)

// AR is an autoregressive one-step-ahead predictor: it periodically fits an
// AR(p) model to a sliding window of the series by solving the Yule–Walker
// equations with the Levinson–Durbin recursion (the classic DSP approach
// the paper's methodology section points to), and forecasts
//
//	x_{t+1} = mean + sum_i phi_i * (x_{t+1-i} - mean)
//
// Fitting is O(window + p^2) and happens every refitEvery updates, so the
// per-update cost stays within the NWS "computationally inexpensive"
// budget.
type AR struct {
	name       string
	order      int
	refitEvery int
	ring       *series.Ring
	scratch    []float64
	phi        []float64
	mean       float64
	sinceFit   int
	fitted     bool
}

// NewAR returns an AR(order) forecaster over a window of the given size,
// refitting every refitEvery updates. It panics if order < 1, window <
// 4*order, or refitEvery < 1.
func NewAR(order, window, refitEvery int) *AR {
	if order < 1 {
		panic("forecast: AR order must be >= 1")
	}
	if window < 4*order {
		panic("forecast: AR window must be at least 4*order")
	}
	if refitEvery < 1 {
		panic("forecast: AR refitEvery must be >= 1")
	}
	return &AR{
		name:       fmt.Sprintf("ar_%d", order),
		order:      order,
		refitEvery: refitEvery,
		ring:       series.NewRing(window),
		scratch:    make([]float64, 0, window),
	}
}

// Name implements Forecaster.
func (f *AR) Name() string { return f.name }

// Update implements Forecaster.
func (f *AR) Update(v float64) {
	f.ring.Push(v)
	f.sinceFit++
	if f.ring.Len() >= 2*f.order+2 && (f.sinceFit >= f.refitEvery || !f.fitted) {
		f.refit()
	}
}

func (f *AR) refit() {
	f.scratch = f.ring.Values(f.scratch)
	f.mean = stats.Mean(f.scratch)
	// Autocovariances gamma(0..p).
	r := make([]float64, f.order+1)
	for k := 0; k <= f.order; k++ {
		r[k] = stats.Autocovariance(f.scratch, k)
	}
	if r[0] <= 0 {
		// Constant window: predict the mean.
		f.phi = nil
		f.fitted = true
		f.sinceFit = 0
		return
	}
	f.phi = levinsonDurbin(r)
	f.fitted = true
	f.sinceFit = 0
}

// levinsonDurbin solves the Yule-Walker system for AR coefficients given
// autocovariances r[0..p]. It returns phi[0..p-1] where phi[i] multiplies
// the (i+1)-lagged value.
func levinsonDurbin(r []float64) []float64 {
	p := len(r) - 1
	a := make([]float64, p+1)
	tmp := make([]float64, p+1)
	e := r[0]
	for k := 1; k <= p; k++ {
		acc := r[k]
		for j := 1; j < k; j++ {
			acc -= a[j] * r[k-j]
		}
		if e == 0 {
			break
		}
		kk := acc / e
		copy(tmp, a[:k])
		a[k] = kk
		for j := 1; j < k; j++ {
			a[j] = tmp[j] - kk*tmp[k-j]
		}
		e *= 1 - kk*kk
		if e < 0 {
			e = 0
		}
	}
	return a[1:]
}

// Forecast implements Forecaster.
func (f *AR) Forecast() (float64, bool) {
	n := f.ring.Len()
	if n == 0 {
		return 0, false
	}
	if !f.fitted || len(f.phi) == 0 {
		last, _ := f.ring.Last()
		if !f.fitted {
			return last, true
		}
		return f.mean, true
	}
	pred := f.mean
	for i, c := range f.phi {
		idx := n - 1 - i
		if idx < 0 {
			break
		}
		pred += c * (f.ring.At(idx) - f.mean)
	}
	return pred, true
}

// Seasonal predicts from the same phase of previous periods: with period P
// samples, the forecast for the next measurement is the mean of the values
// one period, two periods, ... back at the same phase. CPU availability has
// a strong daily cycle (the paper's traces visibly do), which none of the
// windowed methods can exploit.
type Seasonal struct {
	name    string
	period  int
	history *series.Ring
	scratch []float64
}

// NewSeasonal returns a seasonal predictor with the given period (in
// samples) remembering the given number of periods. It panics if period < 2
// or periods < 1.
func NewSeasonal(period, periods int) *Seasonal {
	if period < 2 {
		panic("forecast: Seasonal period must be >= 2")
	}
	if periods < 1 {
		panic("forecast: Seasonal must keep at least one period")
	}
	return &Seasonal{
		name:    fmt.Sprintf("seasonal_%d", period),
		period:  period,
		history: series.NewRing(period * periods),
	}
}

// Name implements Forecaster.
func (f *Seasonal) Name() string { return f.name }

// Update implements Forecaster.
func (f *Seasonal) Update(v float64) { f.history.Push(v) }

// Forecast implements Forecaster. Until a full period of history exists it
// falls back to the last value.
func (f *Seasonal) Forecast() (float64, bool) {
	n := f.history.Len()
	if n == 0 {
		return 0, false
	}
	if n < f.period {
		v, _ := f.history.Last()
		return v, true
	}
	// The next sample sits one period after index n-period, two after
	// n-2*period, etc.
	var sum float64
	var count int
	for idx := n - f.period; idx >= 0; idx -= f.period {
		sum += f.history.At(idx)
		count++
	}
	return sum / float64(count), true
}

var (
	_ Forecaster = (*AR)(nil)
	_ Forecaster = (*Seasonal)(nil)
)
