package forecast

import "nwscpu/internal/series"

// intervalWindow is how many recent engine-level one-step errors back the
// empirical prediction intervals.
const intervalWindow = 200

// Interval is a prediction with an empirical uncertainty band.
type Interval struct {
	Prediction
	Lo, Hi float64 // bounds of the requested-coverage interval
	N      int     // number of residuals behind the band
}

// recordOwnError is called from Update with the arriving value to score the
// engine's own previously forwarded forecast (the selected member's), which
// is what the intervals must calibrate against — not any single member.
func (e *Engine) recordOwnError(v float64) {
	if e.ownPending {
		if e.ownErrs == nil {
			e.ownErrs = series.NewOrderWindow(intervalWindow)
		}
		e.ownErrs.Push(v - e.ownForecast)
	}
}

// noteOwnForecast stores the forecast the engine would forward right now so
// the next Update can score it, and records the selection for the dynamics
// report. Update has just refreshed the cached best index, so this is an
// O(1) read rather than a full re-selection.
func (e *Engine) noteOwnForecast() {
	if e.best < 0 {
		return
	}
	t := e.trackers[e.best]
	e.ownForecast = t.pending
	e.ownPending = true
	e.selections[t.f.Name()]++
}

// ForecastInterval returns the engine's forecast together with an empirical
// central interval of the given coverage (e.g. 0.9 for a 90% band), built
// from the engine's recent one-step-ahead residuals. ok is false until the
// engine has a forecast; before any residuals exist the band collapses to
// the point forecast. Coverage outside (0, 1) is clamped to 0.9.
//
// The residuals live in an order-statistics window, so the quantile reads
// are O(log w) and the call allocates nothing (the seed implementation
// copied and sorted the residual ring twice per call).
func (e *Engine) ForecastInterval(coverage float64) (Interval, bool) {
	p, ok := e.forecast()
	if !ok {
		return Interval{}, false
	}
	if coverage <= 0 || coverage >= 1 {
		coverage = 0.9
	}
	iv := Interval{Prediction: p, Lo: p.Value, Hi: p.Value}
	if e.ownErrs == nil || e.ownErrs.Len() == 0 {
		return iv, true
	}
	alpha := (1 - coverage) / 2
	iv.Lo = p.Value + e.ownErrs.Quantile(alpha)
	iv.Hi = p.Value + e.ownErrs.Quantile(1-alpha)
	iv.N = e.ownErrs.Len()
	return iv, true
}
