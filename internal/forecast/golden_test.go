package forecast

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nwscpu/internal/fgn"
	"nwscpu/internal/series"
	"nwscpu/internal/simos"
	"nwscpu/internal/stats"
	"nwscpu/internal/workload"
)

// This file pins the incremental forecasting kernel to the seed
// implementation bit for bit: the seed's copy-and-sort window forecasters
// and its O(bank × window) selector are reproduced below verbatim (metrics
// stripped), and every forwarded prediction, interval, and selection count
// must match the production kernel exactly over recorded simulator traces.
// If these pass, the incremental rewrite cannot have moved a single number
// in the paper's tables (Tables 2/3/5/6 all flow through Engine forecasts
// and SelectionCounts).
//
// SlidingMean is deliberately shared between both sides: its periodic sum
// resynchronization is an intentional ulp-level numeric bugfix (see
// TestSlidingMeanNoDriftLongRun), not part of the kernel restructuring
// under test here.

// --- seed window forecasters (copy-and-sort, as before this change) ---

type seedRingWindow struct {
	ring    *series.Ring
	scratch []float64
}

func newSeedRingWindow(capacity int) seedRingWindow {
	return seedRingWindow{ring: series.NewRing(capacity), scratch: make([]float64, 0, capacity)}
}

type seedSlidingMedian struct {
	name string
	win  seedRingWindow
}

func (f *seedSlidingMedian) Name() string     { return f.name }
func (f *seedSlidingMedian) Update(v float64) { f.win.ring.Push(v) }
func (f *seedSlidingMedian) Forecast() (float64, bool) {
	if f.win.ring.Len() == 0 {
		return 0, false
	}
	f.win.scratch = f.win.ring.Values(f.win.scratch)
	return stats.Median(f.win.scratch), true
}

type seedTrimmedMean struct {
	name string
	trim float64
	win  seedRingWindow
}

func (f *seedTrimmedMean) Name() string     { return f.name }
func (f *seedTrimmedMean) Update(v float64) { f.win.ring.Push(v) }
func (f *seedTrimmedMean) Forecast() (float64, bool) {
	if f.win.ring.Len() == 0 {
		return 0, false
	}
	f.win.scratch = f.win.ring.Values(f.win.scratch)
	return stats.TrimmedMean(f.win.scratch, f.trim), true
}

type seedAdaptiveWindow struct {
	name      string
	useMedian bool
	lengths   []int
	errs      []float64
	win       seedRingWindow
}

func newSeedAdaptiveWindow(name string, useMedian bool, lengths []int) *seedAdaptiveWindow {
	maxLen := 0
	for _, l := range lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	return &seedAdaptiveWindow{
		name:      name,
		useMedian: useMedian,
		lengths:   append([]int(nil), lengths...),
		errs:      make([]float64, len(lengths)),
		win:       newSeedRingWindow(maxLen),
	}
}

func (f *seedAdaptiveWindow) Name() string { return f.name }
func (f *seedAdaptiveWindow) Update(v float64) {
	if f.win.ring.Len() > 0 {
		for i, l := range f.lengths {
			p := f.predictWith(l)
			d := p - v
			if d < 0 {
				d = -d
			}
			f.errs[i] += d
		}
	}
	f.win.ring.Push(v)
}

func (f *seedAdaptiveWindow) Forecast() (float64, bool) {
	if f.win.ring.Len() == 0 {
		return 0, false
	}
	best := 0
	for i := range f.lengths {
		if f.errs[i] < f.errs[best] {
			best = i
		}
	}
	return f.predictWith(f.lengths[best]), true
}

func (f *seedAdaptiveWindow) predictWith(l int) float64 {
	f.win.scratch = f.win.ring.Tail(l, f.win.scratch)
	if f.useMedian {
		return stats.Median(f.win.scratch)
	}
	return stats.Mean(f.win.scratch)
}

// --- seed engine (re-poll + re-sum selection, as before this change) ---

type seedTracker struct {
	f          Forecaster
	pending    float64
	hasPending bool
	sumAbs     float64
	sumSq      float64
	n          int
	winAbs     *series.Ring
	winSq      *series.Ring
}

func (t *seedTracker) record(absErr, sqErr float64) {
	t.sumAbs += absErr
	t.sumSq += sqErr
	t.n++
	if t.winAbs != nil {
		t.winAbs.Push(absErr)
		t.winSq.Push(sqErr)
	}
}

func (t *seedTracker) score(by SelectBy) float64 {
	if t.winAbs != nil && t.winAbs.Len() > 0 {
		ring := t.winAbs
		if by == ByMSE {
			ring = t.winSq
		}
		var sum float64
		for i := 0; i < ring.Len(); i++ {
			sum += ring.At(i)
		}
		return sum / float64(ring.Len())
	}
	if by == ByMSE {
		return t.mse()
	}
	return t.mae()
}

func (t *seedTracker) mae() float64 {
	if t.n == 0 {
		return math.Inf(1)
	}
	return t.sumAbs / float64(t.n)
}

func (t *seedTracker) mse() float64 {
	if t.n == 0 {
		return math.Inf(1)
	}
	return t.sumSq / float64(t.n)
}

type seedEngine struct {
	trackers    []*seedTracker
	selectBy    SelectBy
	n           int
	ownForecast float64
	ownPending  bool
	ownErrs     *series.Ring
	selections  map[string]int
}

func newSeedEngine(selectBy SelectBy, selectWindow int, bank []Forecaster) *seedEngine {
	ts := make([]*seedTracker, len(bank))
	for i, f := range bank {
		ts[i] = &seedTracker{f: f}
		if selectWindow > 0 {
			ts[i].winAbs = series.NewRing(selectWindow)
			ts[i].winSq = series.NewRing(selectWindow)
		}
	}
	return &seedEngine{trackers: ts, selectBy: selectBy, selections: make(map[string]int)}
}

func (e *seedEngine) Update(v float64) {
	if e.ownPending {
		if e.ownErrs == nil {
			e.ownErrs = series.NewRing(intervalWindow)
		}
		e.ownErrs.Push(v - e.ownForecast)
	}
	for _, t := range e.trackers {
		if t.hasPending {
			d := t.pending - v
			t.record(math.Abs(d), d*d)
		}
		t.f.Update(v)
		t.pending, t.hasPending = t.f.Forecast()
	}
	e.n++
	if p, ok := e.Forecast(); ok {
		e.ownForecast = p.Value
		e.ownPending = true
		e.selections[p.Method]++
	}
}

func (e *seedEngine) Forecast() (Prediction, bool) {
	best := -1
	bestScore := math.Inf(1)
	for i, t := range e.trackers {
		if !t.hasPending {
			continue
		}
		score := t.score(e.selectBy)
		if best == -1 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return Prediction{}, false
	}
	t := e.trackers[best]
	return Prediction{Value: t.pending, Method: t.f.Name(), MAE: t.mae(), MSE: t.mse()}, true
}

func (e *seedEngine) ForecastInterval(coverage float64) (Interval, bool) {
	p, ok := e.Forecast()
	if !ok {
		return Interval{}, false
	}
	if coverage <= 0 || coverage >= 1 {
		coverage = 0.9
	}
	iv := Interval{Prediction: p, Lo: p.Value, Hi: p.Value}
	if e.ownErrs == nil || e.ownErrs.Len() == 0 {
		return iv, true
	}
	resid := e.ownErrs.Values(nil)
	alpha := (1 - coverage) / 2
	iv.Lo = p.Value + stats.Quantile(resid, alpha)
	iv.Hi = p.Value + stats.Quantile(resid, 1-alpha)
	iv.N = len(resid)
	return iv, true
}

func (e *seedEngine) SelectionCounts() []MethodCount {
	out := make([]MethodCount, 0, len(e.selections))
	for name, n := range e.selections {
		out = append(out, MethodCount{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// seedBank mirrors DefaultBank with the seed window implementations.
func seedBank() []Forecaster {
	return []Forecaster{
		NewLastValue(),
		NewRunningMean(),
		NewSlidingMean(5),
		NewSlidingMean(10),
		NewSlidingMean(20),
		NewSlidingMean(30),
		NewSlidingMean(50),
		&seedSlidingMedian{name: "sw_median_5", win: newSeedRingWindow(5)},
		&seedSlidingMedian{name: "sw_median_10", win: newSeedRingWindow(10)},
		&seedSlidingMedian{name: "sw_median_20", win: newSeedRingWindow(20)},
		&seedSlidingMedian{name: "sw_median_30", win: newSeedRingWindow(30)},
		&seedSlidingMedian{name: "sw_median_50", win: newSeedRingWindow(50)},
		&seedTrimmedMean{name: "sw_trim_30_30", trim: 0.3, win: newSeedRingWindow(30)},
		&seedTrimmedMean{name: "sw_trim_50_20", trim: 0.2, win: newSeedRingWindow(50)},
		NewExpSmooth("exp_05", 0.05),
		NewExpSmooth("exp_10", 0.10),
		NewExpSmooth("exp_20", 0.20),
		NewExpSmooth("exp_30", 0.30),
		NewExpSmooth("exp_50", 0.50),
		NewExpSmooth("exp_75", 0.75),
		NewExpSmooth("exp_90", 0.90),
		NewTriggLeach(0.2),
		newSeedAdaptiveWindow("adapt_mean", false, []int{5, 10, 20, 50}),
		newSeedAdaptiveWindow("adapt_median", true, []int{5, 10, 20, 50}),
		NewTrend(0.5),
	}
}

// goldenTraces returns the recorded traces the equivalence is proven over:
// a time-shared-host availability series recorded from the simos simulator
// under the thing1 workload, a self-similar fGn availability trace (the
// paper's statistical model, H = 0.9), a regime-switching series, and a
// tie-heavy flat series with level jumps.
func goldenTraces(t *testing.T) map[string][]float64 {
	t.Helper()
	traces := make(map[string][]float64)

	h := simos.New(simos.DefaultConfig())
	workload.Submit(h, workload.Thing1().Generate(6*3600))
	var sim []float64
	for tick := 10.0; tick <= 6*3600; tick += 10 {
		h.RunUntil(tick)
		sim = append(sim, 1/(1+h.LoadAvg()))
	}
	traces["simos_thing1"] = sim

	fg, err := fgn.AvailabilityTrace(rand.New(rand.NewSource(9)), 0.9, 0.6, 0.15, 2048)
	if err != nil {
		t.Fatalf("fgn trace: %v", err)
	}
	traces["fgn_h09"] = fg

	rng := rand.New(rand.NewSource(10))
	regime := make([]float64, 3000)
	level := 0.5
	for i := range regime {
		if rng.Float64() < 0.01 {
			level = rng.Float64()
		}
		regime[i] = level + rng.NormFloat64()*0.05
	}
	traces["regime"] = regime

	flat := make([]float64, 1200)
	for i := range flat {
		flat[i] = 0.25 + 0.5*float64(i/300) // exact ties within each plateau
	}
	traces["flat_jumps"] = flat

	return traces
}

func TestGoldenEquivalenceWithSeedKernel(t *testing.T) {
	configs := []struct {
		name   string
		by     SelectBy
		window int
	}{
		{"cumulative_mae", ByMAE, 0},
		{"cumulative_mse", ByMSE, 0},
		{"windowed25_mae", ByMAE, 25},
		{"windowed50_mse", ByMSE, 50},
	}
	for name, trace := range goldenTraces(t) {
		for _, cfg := range configs {
			t.Run(name+"/"+cfg.name, func(t *testing.T) {
				eng := NewWindowedEngine(cfg.by, cfg.window, DefaultBank()...)
				ref := newSeedEngine(cfg.by, cfg.window, seedBank())
				for i, v := range trace {
					eng.Update(v)
					ref.Update(v)
					got, gotOK := eng.Forecast()
					want, wantOK := ref.Forecast()
					if gotOK != wantOK || got != want {
						t.Fatalf("step %d: forecast = %+v (%v), seed = %+v (%v)",
							i, got, gotOK, want, wantOK)
					}
					if i%7 == 0 {
						gi, giOK := eng.ForecastInterval(0.9)
						wi, wiOK := ref.ForecastInterval(0.9)
						if giOK != wiOK || gi != wi {
							t.Fatalf("step %d: interval = %+v (%v), seed = %+v (%v)",
								i, gi, giOK, wi, wiOK)
						}
					}
				}
				if got, want := eng.SelectionCounts(), ref.SelectionCounts(); !reflect.DeepEqual(got, want) {
					t.Fatalf("selection dynamics diverged:\n got %v\nwant %v", got, want)
				}
				if got, want := eng.Report(), mapSeedReport(ref); !reflect.DeepEqual(got, want) {
					t.Fatalf("reports diverged:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

func mapSeedReport(e *seedEngine) []MethodError {
	out := make([]MethodError, len(e.trackers))
	for i, t := range e.trackers {
		out[i] = MethodError{Name: t.f.Name(), MAE: t.mae(), MSE: t.mse(), N: t.n}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MAE < out[j].MAE })
	return out
}

// The window forecasters individually must match their seed counterparts
// bit for bit on random data — this localizes a kernel divergence to the
// member that caused it.
func TestGoldenWindowForecasterEquivalence(t *testing.T) {
	pairs := []struct {
		name string
		inc  Forecaster
		seed Forecaster
	}{
		{"median5", NewSlidingMedian(5), &seedSlidingMedian{name: "sw_median_5", win: newSeedRingWindow(5)}},
		{"median50", NewSlidingMedian(50), &seedSlidingMedian{name: "sw_median_50", win: newSeedRingWindow(50)}},
		{"trim_30_30", NewTrimmedMean(30, 0.3), &seedTrimmedMean{name: "sw_trim_30_30", trim: 0.3, win: newSeedRingWindow(30)}},
		{"trim_50_20", NewTrimmedMean(50, 0.2), &seedTrimmedMean{name: "sw_trim_50_20", trim: 0.2, win: newSeedRingWindow(50)}},
		{"trim_zero", NewTrimmedMean(10, 0), &seedTrimmedMean{name: "sw_trim_10_00", trim: 0, win: newSeedRingWindow(10)}},
		{"adapt_mean", NewAdaptiveWindowMean(5, 10, 20, 50), newSeedAdaptiveWindow("adapt_mean", false, []int{5, 10, 20, 50})},
		{"adapt_median", NewAdaptiveWindowMedian(5, 10, 20, 50), newSeedAdaptiveWindow("adapt_median", true, []int{5, 10, 20, 50})},
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		var v float64
		if i%11 == 0 {
			v = float64(rng.Intn(3)) // duplicates and exact ties
		} else {
			v = rng.NormFloat64() * 10
		}
		for _, p := range pairs {
			p.inc.Update(v)
			p.seed.Update(v)
			gv, gok := p.inc.Forecast()
			wv, wok := p.seed.Forecast()
			if gok != wok || gv != wv {
				t.Fatalf("%s step %d: forecast = %v (%v), seed = %v (%v)", p.name, i, gv, gok, wv, wok)
			}
		}
	}
}

// The engine's steady-state hot path must not allocate at all: Update over
// a full DefaultBank, plus the O(1) query surface.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewDefaultEngine()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 600; i++ {
		e.Update(rng.Float64())
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		i++
		e.Update(float64(i%89) / 89)
		if _, ok := e.Forecast(); !ok {
			t.Fatal("no forecast")
		}
		if _, ok := e.ForecastInterval(0.9); !ok {
			t.Fatal("no interval")
		}
		_ = e.BestMethod()
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", allocs)
	}
}
