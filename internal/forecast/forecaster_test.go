package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feed(f Forecaster, vs ...float64) {
	for _, v := range vs {
		f.Update(v)
	}
}

func mustForecast(t *testing.T, f Forecaster) float64 {
	t.Helper()
	v, ok := f.Forecast()
	if !ok {
		t.Fatalf("%s: Forecast not ready", f.Name())
	}
	return v
}

func TestLastValue(t *testing.T) {
	f := NewLastValue()
	if _, ok := f.Forecast(); ok {
		t.Fatal("empty LastValue should not forecast")
	}
	feed(f, 1, 2, 7)
	if got := mustForecast(t, f); got != 7 {
		t.Fatalf("LastValue = %v, want 7", got)
	}
}

func TestRunningMean(t *testing.T) {
	f := NewRunningMean()
	if _, ok := f.Forecast(); ok {
		t.Fatal("empty RunningMean should not forecast")
	}
	feed(f, 1, 2, 3, 4)
	if got := mustForecast(t, f); got != 2.5 {
		t.Fatalf("RunningMean = %v, want 2.5", got)
	}
}

func TestExpSmooth(t *testing.T) {
	f := NewExpSmooth("exp", 0.5)
	feed(f, 10)
	if got := mustForecast(t, f); got != 10 {
		t.Fatalf("first value should seed the state, got %v", got)
	}
	feed(f, 20)
	if got := mustForecast(t, f); got != 15 {
		t.Fatalf("ExpSmooth = %v, want 15", got)
	}
}

func TestExpSmoothPanics(t *testing.T) {
	for _, g := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("gain %v accepted", g)
				}
			}()
			NewExpSmooth("x", g)
		}()
	}
}

func TestTriggLeachTracksLevelShift(t *testing.T) {
	f := NewTriggLeach(0.2)
	for i := 0; i < 50; i++ {
		f.Update(1)
	}
	if got := mustForecast(t, f); math.Abs(got-1) > 1e-9 {
		t.Fatalf("steady state = %v, want 1", got)
	}
	// Level shift: the adaptive gain should converge quickly.
	for i := 0; i < 10; i++ {
		f.Update(5)
	}
	if got := mustForecast(t, f); math.Abs(got-5) > 0.2 {
		t.Fatalf("after shift = %v, want near 5", got)
	}
}

func TestTriggLeachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("phi 0 accepted")
		}
	}()
	NewTriggLeach(0)
}

func TestTrend(t *testing.T) {
	f := NewTrend(0.5)
	if _, ok := f.Forecast(); ok {
		t.Fatal("empty Trend should not forecast")
	}
	feed(f, 10)
	if got := mustForecast(t, f); got != 10 {
		t.Fatalf("one-sample Trend = %v", got)
	}
	feed(f, 14)
	if got := mustForecast(t, f); got != 16 {
		t.Fatalf("Trend = %v, want 16 (= 14 + 0.5*4)", got)
	}
}

func TestTrendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("damping 0 accepted")
		}
	}()
	NewTrend(0)
}

func TestSlidingMean(t *testing.T) {
	f := NewSlidingMean(3)
	feed(f, 1, 2, 3, 4) // window holds 2,3,4
	if got := mustForecast(t, f); got != 3 {
		t.Fatalf("SlidingMean = %v, want 3", got)
	}
	if f.Name() != "sw_mean_3" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestSlidingMeanPartialWindow(t *testing.T) {
	f := NewSlidingMean(10)
	feed(f, 2, 4)
	if got := mustForecast(t, f); got != 3 {
		t.Fatalf("partial-window mean = %v, want 3", got)
	}
}

func TestSlidingMeanStaysAccurate(t *testing.T) {
	// Long run: incremental sum must not drift away from the exact mean.
	f := NewSlidingMean(7)
	rng := rand.New(rand.NewSource(4))
	var last []float64
	for i := 0; i < 100000; i++ {
		v := rng.Float64()
		f.Update(v)
		last = append(last, v)
		if len(last) > 7 {
			last = last[1:]
		}
	}
	var sum float64
	for _, v := range last {
		sum += v
	}
	want := sum / float64(len(last))
	if got := mustForecast(t, f); math.Abs(got-want) > 1e-9 {
		t.Fatalf("drift: got %v, want %v", got, want)
	}
}

func TestSlidingMedian(t *testing.T) {
	f := NewSlidingMedian(3)
	feed(f, 100, 1, 2, 9) // window 1,2,9
	if got := mustForecast(t, f); got != 2 {
		t.Fatalf("SlidingMedian = %v, want 2", got)
	}
	if _, ok := NewSlidingMedian(5).Forecast(); ok {
		t.Fatal("empty median should not forecast")
	}
}

func TestTrimmedMean(t *testing.T) {
	f := NewTrimmedMean(5, 0.2)
	feed(f, 100, 1, 2, 3, -50) // sorted: -50,1,2,3,100; trim 1 each side -> mean(1,2,3)=2
	if got := mustForecast(t, f); got != 2 {
		t.Fatalf("TrimmedMean = %v, want 2", got)
	}
}

func TestTrimmedMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("trim 0.5 accepted")
		}
	}()
	NewTrimmedMean(5, 0.5)
}

func TestAdaptiveWindowPrefersShortOnShifts(t *testing.T) {
	f := NewAdaptiveWindowMean(2, 50)
	// A series with frequent level shifts favors the short window.
	rng := rand.New(rand.NewSource(17))
	level := 0.0
	for i := 0; i < 500; i++ {
		if i%10 == 0 {
			level = rng.Float64() * 100
		}
		f.Update(level + rng.NormFloat64()*0.01)
	}
	if got := f.BestLength(); got != 2 {
		t.Fatalf("BestLength = %d, want 2 on shifting series", got)
	}
}

func TestAdaptiveWindowPrefersLongOnNoise(t *testing.T) {
	f := NewAdaptiveWindowMedian(2, 50)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 2000; i++ {
		f.Update(5 + rng.NormFloat64())
	}
	if got := f.BestLength(); got != 50 {
		t.Fatalf("BestLength = %d, want 50 on stationary noise", got)
	}
}

func TestAdaptiveWindowPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAdaptiveWindowMean() },
		func() { NewAdaptiveWindowMean(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: every forecaster in the default bank, fed a constant series,
// predicts that constant.
func TestBankConstantSeries(t *testing.T) {
	for _, f := range DefaultBank() {
		for i := 0; i < 100; i++ {
			f.Update(0.75)
		}
		v, ok := f.Forecast()
		if !ok {
			t.Errorf("%s: no forecast after 100 updates", f.Name())
			continue
		}
		if math.Abs(v-0.75) > 1e-9 {
			t.Errorf("%s: constant series forecast = %v, want 0.75", f.Name(), v)
		}
	}
}

// Property: forecasts always lie within [min, max] of the values seen so far
// for every non-extrapolating bank member (Trend extrapolates by design).
func TestBankForecastsBounded(t *testing.T) {
	prop := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e50 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		for _, f := range DefaultBank() {
			if f.Name() == "trend" {
				continue
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range vals {
				f.Update(v)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				p, ok := f.Forecast()
				if !ok {
					return false
				}
				if p < lo-1e-6 || p > hi+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBankNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range DefaultBank() {
		if seen[f.Name()] {
			t.Fatalf("duplicate forecaster name %q", f.Name())
		}
		seen[f.Name()] = true
	}
}
