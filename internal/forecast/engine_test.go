package forecast

import (
	"math"
	"math/rand"
	"testing"
)

func TestEngineEmptyBankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty bank accepted")
		}
	}()
	NewEngine(ByMAE)
}

func TestEngineDuplicateNamesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate names accepted")
		}
	}()
	NewEngine(ByMAE, NewLastValue(), NewLastValue())
}

func TestEngineNoForecastBeforeData(t *testing.T) {
	e := NewDefaultEngine()
	if _, ok := e.Forecast(); ok {
		t.Fatal("engine forecast before any data")
	}
	if e.BestMethod() != "" {
		t.Fatal("BestMethod before data should be empty")
	}
	e.Update(0.5)
	if _, ok := e.Forecast(); !ok {
		t.Fatal("engine should forecast after one value")
	}
	if e.N() != 1 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestEngineConstantSeries(t *testing.T) {
	e := NewDefaultEngine()
	for i := 0; i < 200; i++ {
		e.Update(0.42)
	}
	p, ok := e.Forecast()
	if !ok {
		t.Fatal("no forecast")
	}
	if math.Abs(p.Value-0.42) > 1e-9 {
		t.Fatalf("forecast = %v, want 0.42", p.Value)
	}
	if p.MAE > 1e-9 {
		t.Fatalf("MAE on constant series = %v, want 0", p.MAE)
	}
}

func TestEnginePicksLastValueOnRandomWalk(t *testing.T) {
	// On a random walk, last-value is the optimal one-step predictor among
	// the bank; the selector must find it.
	rng := rand.New(rand.NewSource(23))
	e := NewEngine(ByMAE, NewLastValue(), NewRunningMean(), NewSlidingMean(50))
	x := 0.0
	for i := 0; i < 5000; i++ {
		x += rng.NormFloat64()
		e.Update(x)
	}
	if got := e.BestMethod(); got != "last_value" {
		t.Fatalf("BestMethod = %q, want last_value", got)
	}
}

func TestEnginePicksMeanOnWhiteNoise(t *testing.T) {
	// On i.i.d. noise around a fixed level, the long mean beats last-value.
	rng := rand.New(rand.NewSource(24))
	e := NewEngine(ByMAE, NewLastValue(), NewRunningMean())
	for i := 0; i < 5000; i++ {
		e.Update(10 + rng.NormFloat64())
	}
	if got := e.BestMethod(); got != "run_mean" {
		t.Fatalf("BestMethod = %q, want run_mean", got)
	}
}

func TestEngineMixtureNearBestMember(t *testing.T) {
	// The NWS claim: the dynamic selection is about as accurate as the best
	// individual member. Allow 15% slack for switching cost.
	rng := rand.New(rand.NewSource(25))
	vals := make([]float64, 4000)
	level := 0.5
	for i := range vals {
		if rng.Float64() < 0.01 {
			level = rng.Float64()
		}
		vals[i] = level + rng.NormFloat64()*0.05
	}
	engRes, report, err := EvaluateEngine(NewDefaultEngine, vals)
	if err != nil {
		t.Fatal(err)
	}
	bestMAE := report[0].MAE
	if engRes.MAE > bestMAE*1.15 {
		t.Fatalf("engine MAE %v much worse than best member %v (%s)",
			engRes.MAE, bestMAE, report[0].Name)
	}
}

func TestEngineMSESelection(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	e := NewEngine(ByMSE, NewLastValue(), NewRunningMean())
	for i := 0; i < 3000; i++ {
		e.Update(rng.NormFloat64())
	}
	p, ok := e.Forecast()
	if !ok {
		t.Fatal("no forecast")
	}
	if p.Method != "run_mean" {
		t.Fatalf("MSE selector chose %q, want run_mean", p.Method)
	}
	if p.MSE <= 0 {
		t.Fatalf("MSE = %v", p.MSE)
	}
}

func TestEngineReportSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	e := NewDefaultEngine()
	for i := 0; i < 500; i++ {
		e.Update(rng.Float64())
	}
	rep := e.Report()
	if len(rep) != len(DefaultBank()) {
		t.Fatalf("report size = %d", len(rep))
	}
	for i := 1; i < len(rep); i++ {
		if rep[i-1].MAE > rep[i].MAE {
			t.Fatalf("report not sorted at %d: %v > %v", i, rep[i-1].MAE, rep[i].MAE)
		}
	}
	for _, m := range rep {
		if m.N == 0 {
			t.Fatalf("method %s never scored", m.Name)
		}
	}
}

func TestEvaluateMatchesManualMAE(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	res, err := Evaluate(NewLastValue(), vals)
	if err != nil {
		t.Fatal(err)
	}
	// Forecasts: NaN, 1, 2, 3 -> errors 1,1,1 -> MAE 1.
	if res.N != 3 || math.Abs(res.MAE-1) > 1e-12 {
		t.Fatalf("res = %+v", res)
	}
	if !math.IsNaN(res.Forecasts[0]) || res.Forecasts[1] != 1 {
		t.Fatalf("forecasts = %v", res.Forecasts)
	}
	if math.Abs(res.RMSE-1) > 1e-12 {
		t.Fatalf("RMSE = %v", res.RMSE)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if _, err := Evaluate(NewLastValue(), nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if _, _, err := EvaluateEngine(NewDefaultEngine, nil); err == nil {
		t.Fatal("empty series accepted by EvaluateEngine")
	}
}

func TestEvaluateEngineForecastsAligned(t *testing.T) {
	vals := []float64{5, 5, 5, 5, 5}
	res, _, err := EvaluateEngine(NewDefaultEngine, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forecasts) != len(vals) {
		t.Fatalf("forecast length %d", len(res.Forecasts))
	}
	for i := 1; i < len(vals); i++ {
		if res.Forecasts[i] != 5 {
			t.Fatalf("forecast[%d] = %v", i, res.Forecasts[i])
		}
	}
}

func TestSelectionCounts(t *testing.T) {
	e := NewDefaultEngine()
	if len(e.SelectionCounts()) != 0 {
		t.Fatal("selections before data")
	}
	rng := rand.New(rand.NewSource(31))
	level := 0.5
	n := 2000
	for i := 0; i < n; i++ {
		if i%400 == 0 {
			level = rng.Float64()
		}
		e.Update(level + rng.NormFloat64()*0.05)
	}
	counts := e.SelectionCounts()
	if len(counts) == 0 {
		t.Fatal("no selections recorded")
	}
	total := 0
	for _, c := range counts {
		total += c.Count
		if c.Count <= 0 {
			t.Fatalf("non-positive count: %+v", c)
		}
	}
	if total != n {
		t.Fatalf("selection total = %d, want %d", total, n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i-1].Count < counts[i].Count {
			t.Fatalf("counts not sorted: %v", counts)
		}
	}
}

func TestWindowedEngineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative window accepted")
		}
	}()
	NewWindowedEngine(ByMAE, -1, NewLastValue())
}

func TestWindowedSelectionAdaptsFaster(t *testing.T) {
	// Phase 1: white noise around a level (running mean wins). Phase 2:
	// random walk (last value wins). A short selection window must switch
	// to last_value faster than the cumulative selector.
	mkVals := func() []float64 {
		rng := rand.New(rand.NewSource(41))
		vals := make([]float64, 0, 4000)
		for i := 0; i < 2000; i++ {
			vals = append(vals, 10+rng.NormFloat64()*0.1)
		}
		x := 10.0
		for i := 0; i < 2000; i++ {
			x += rng.NormFloat64()
			vals = append(vals, x)
		}
		return vals
	}
	switchPoint := func(newEng func() *Engine) int {
		e := newEng()
		vals := mkVals()
		for i, v := range vals {
			e.Update(v)
			if i > 2000 && e.BestMethod() == "last_value" {
				return i - 2000
			}
		}
		return len(vals)
	}
	bank := func() []Forecaster { return []Forecaster{NewLastValue(), NewRunningMean()} }
	cumulative := switchPoint(func() *Engine { return NewEngine(ByMAE, bank()...) })
	windowed := switchPoint(func() *Engine { return NewWindowedEngine(ByMAE, 50, bank()...) })
	if windowed >= cumulative {
		t.Fatalf("windowed selection (%d steps) not faster than cumulative (%d)", windowed, cumulative)
	}
	if windowed > 200 {
		t.Fatalf("windowed selection too slow: %d steps", windowed)
	}
}

func TestWindowedEngineConstantSeries(t *testing.T) {
	e := NewWindowedEngine(ByMAE, 20, DefaultBank()...)
	for i := 0; i < 100; i++ {
		e.Update(0.3)
	}
	p, ok := e.Forecast()
	if !ok || math.Abs(p.Value-0.3) > 1e-9 {
		t.Fatalf("windowed engine on constant series: %v %v", p.Value, ok)
	}
}
