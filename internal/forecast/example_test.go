package forecast_test

import (
	"fmt"

	"nwscpu/internal/forecast"
)

// The basic usage: feed measurements, read one-step-ahead predictions.
func ExampleEngine() {
	eng := forecast.NewDefaultEngine()
	for _, v := range []float64{0.9, 0.9, 0.9, 0.9, 0.9} {
		eng.Update(v)
	}
	pred, _ := eng.Forecast()
	fmt.Printf("next availability: %.0f%%\n", pred.Value*100)
	// Output: next availability: 90%
}

// Prediction intervals quantify forecast uncertainty from the engine's own
// recent residuals.
func ExampleEngine_ForecastInterval() {
	eng := forecast.NewDefaultEngine()
	for i := 0; i < 100; i++ {
		eng.Update(0.5)
	}
	iv, _ := eng.ForecastInterval(0.9)
	fmt.Printf("%.2f in [%.2f, %.2f]\n", iv.Value, iv.Lo, iv.Hi)
	// Output: 0.50 in [0.50, 0.50]
}

// Evaluate replays a whole series through a forecaster, computing the
// paper's one-step-ahead prediction error (Equation 5).
func ExampleEvaluate() {
	res, _ := forecast.Evaluate(forecast.NewLastValue(), []float64{1, 2, 3, 4})
	fmt.Printf("MAE %.1f over %d forecasts\n", res.MAE, res.N)
	// Output: MAE 1.0 over 3 forecasts
}

// Individual forecasters satisfy a one-method-pair interface and can be
// used standalone.
func ExampleSlidingMean() {
	f := forecast.NewSlidingMean(3)
	for _, v := range []float64{1, 2, 3, 4} {
		f.Update(v)
	}
	pred, _ := f.Forecast()
	fmt.Println(pred)
	// Output: 3
}
