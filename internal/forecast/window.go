package forecast

import (
	"fmt"

	"nwscpu/internal/series"
)

// SlidingMean predicts the mean of the last w measurements. The running sum
// is maintained incrementally so Update and Forecast are O(1); to keep a
// long-running daemon's sum from accumulating floating-point drift, it is
// resynchronized from the ring contents every Cap evictions (amortized O(1)).
type SlidingMean struct {
	name   string
	ring   *series.Ring
	sum    float64
	evicts int // evictions since the last resynchronization
}

// NewSlidingMean returns a sliding-window mean over windows of w values.
// It panics if w < 1.
func NewSlidingMean(w int) *SlidingMean {
	return &SlidingMean{name: fmt.Sprintf("sw_mean_%d", w), ring: series.NewRing(w)}
}

// Name implements Forecaster.
func (f *SlidingMean) Name() string { return f.name }

// Update implements Forecaster.
func (f *SlidingMean) Update(v float64) {
	if f.ring.Full() {
		f.sum -= f.ring.At(0)
		f.evicts++
	}
	f.ring.Push(v)
	f.sum += v
	if f.evicts >= f.ring.Cap() {
		// Add/subtract rounding errors compound without bound on an
		// unbounded series; a fresh sum every Cap evictions pins the drift
		// at one window's worth of roundoff.
		f.evicts = 0
		var sum float64
		for i := 0; i < f.ring.Len(); i++ {
			sum += f.ring.At(i)
		}
		f.sum = sum
	}
}

// Forecast implements Forecaster.
func (f *SlidingMean) Forecast() (float64, bool) {
	n := f.ring.Len()
	if n == 0 {
		return 0, false
	}
	return f.sum / float64(n), true
}

// SlidingMedian predicts the median of the last w measurements. The window
// is an incremental order-statistics structure, so Update and Forecast are
// O(log w) with zero steady-state allocations (the seed implementation
// copied and sorted the window on every forecast).
type SlidingMedian struct {
	name string
	win  *series.OrderWindow
}

// NewSlidingMedian returns a sliding-window median over windows of w values.
// It panics if w < 1.
func NewSlidingMedian(w int) *SlidingMedian {
	return &SlidingMedian{name: fmt.Sprintf("sw_median_%d", w), win: series.NewOrderWindow(w)}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return f.name }

// Update implements Forecaster.
func (f *SlidingMedian) Update(v float64) { f.win.Push(v) }

// Forecast implements Forecaster.
func (f *SlidingMedian) Forecast() (float64, bool) {
	if f.win.Len() == 0 {
		return 0, false
	}
	return f.win.Median(), true
}

// TrimmedMean predicts the alpha-trimmed mean of the last w measurements:
// the lowest and highest trim fraction of the sorted window are discarded
// before averaging. This is the NWS "trimmed" family, robust to the spikes a
// briefly scheduled interactive job injects into an availability series.
// The order-statistics window serves the trimmed span without sorting or
// allocating; OrderWindow.TrimmedMean is bit-compatible with the seed's
// stats.TrimmedMean over a copied window.
type TrimmedMean struct {
	name string
	trim float64
	win  *series.OrderWindow
}

// NewTrimmedMean returns an alpha-trimmed sliding mean. It panics if w < 1
// or trim is outside [0, 0.5).
func NewTrimmedMean(w int, trim float64) *TrimmedMean {
	if trim < 0 || trim >= 0.5 {
		panic("forecast: TrimmedMean trim must be in [0,0.5)")
	}
	return &TrimmedMean{
		name: fmt.Sprintf("sw_trim_%d_%02.0f", w, trim*100),
		trim: trim,
		win:  series.NewOrderWindow(w),
	}
}

// Name implements Forecaster.
func (f *TrimmedMean) Name() string { return f.name }

// Update implements Forecaster.
func (f *TrimmedMean) Update(v float64) { f.win.Push(v) }

// Forecast implements Forecaster.
func (f *TrimmedMean) Forecast() (float64, bool) {
	if f.win.Len() == 0 {
		return 0, false
	}
	return f.win.TrimmedMean(f.trim), true
}

// AdaptiveWindow predicts the mean (or median) of a window whose length
// adapts to the series: after each measurement it scores every candidate
// window length against the value just seen and uses the cumulatively best
// length for the next forecast. This mirrors the NWS adaptive-window
// predictors.
//
// The median variant keeps one order-statistics window per candidate length,
// so each candidate's prediction is O(log l) instead of a copy-and-sort of
// the tail; the mean variant sums the ring tail in place. Neither variant
// allocates after construction.
type AdaptiveWindow struct {
	name      string
	useMedian bool
	lengths   []int
	errs      []float64 // cumulative absolute error per candidate length
	ring      *series.Ring
	wins      []*series.OrderWindow // median variant: one per candidate length
}

// NewAdaptiveWindowMean returns an adaptive-window mean predictor choosing
// among the given window lengths. It panics if lengths is empty or contains
// a non-positive length.
func NewAdaptiveWindowMean(lengths ...int) *AdaptiveWindow {
	return newAdaptiveWindow("adapt_mean", false, lengths)
}

// NewAdaptiveWindowMedian returns an adaptive-window median predictor.
func NewAdaptiveWindowMedian(lengths ...int) *AdaptiveWindow {
	return newAdaptiveWindow("adapt_median", true, lengths)
}

func newAdaptiveWindow(name string, useMedian bool, lengths []int) *AdaptiveWindow {
	if len(lengths) == 0 {
		panic("forecast: AdaptiveWindow needs at least one length")
	}
	maxLen := 0
	for _, l := range lengths {
		if l < 1 {
			panic("forecast: AdaptiveWindow lengths must be positive")
		}
		if l > maxLen {
			maxLen = l
		}
	}
	f := &AdaptiveWindow{
		name:      name,
		useMedian: useMedian,
		lengths:   append([]int(nil), lengths...),
		errs:      make([]float64, len(lengths)),
		ring:      series.NewRing(maxLen),
	}
	if useMedian {
		f.wins = make([]*series.OrderWindow, len(lengths))
		for i, l := range f.lengths {
			f.wins[i] = series.NewOrderWindow(l)
		}
	}
	return f
}

// Name implements Forecaster.
func (f *AdaptiveWindow) Name() string { return f.name }

// Update implements Forecaster.
func (f *AdaptiveWindow) Update(v float64) {
	// Score each candidate length's forecast against the arriving value,
	// then absorb the value into the window(s).
	if f.ring.Len() > 0 {
		for i := range f.lengths {
			d := f.predictCandidate(i) - v
			if d < 0 {
				d = -d
			}
			f.errs[i] += d
		}
	}
	f.ring.Push(v)
	for _, w := range f.wins {
		w.Push(v)
	}
}

// Forecast implements Forecaster.
func (f *AdaptiveWindow) Forecast() (float64, bool) {
	if f.ring.Len() == 0 {
		return 0, false
	}
	return f.predictCandidate(f.bestIdx()), true
}

// BestLength returns the currently selected window length (for diagnostics
// and ablation reporting).
func (f *AdaptiveWindow) BestLength() int { return f.lengths[f.bestIdx()] }

func (f *AdaptiveWindow) bestIdx() int {
	best := 0
	for i := range f.lengths {
		if f.errs[i] < f.errs[best] {
			best = i
		}
	}
	return best
}

// predictCandidate forecasts with candidate window i: the median of its
// order window, or the mean of the last lengths[i] ring values (Kahan
// compensated, matching stats.Mean over the copied tail bit for bit).
func (f *AdaptiveWindow) predictCandidate(i int) float64 {
	if f.useMedian {
		return f.wins[i].Median()
	}
	n := f.ring.Len()
	k := f.lengths[i]
	if k > n {
		k = n
	}
	if k == 0 {
		return 0
	}
	var sum, c float64
	for j := n - k; j < n; j++ {
		y := f.ring.At(j) - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum / float64(k)
}
