package forecast

import (
	"fmt"

	"nwscpu/internal/series"
	"nwscpu/internal/stats"
)

// SlidingMean predicts the mean of the last w measurements. The running sum
// is maintained incrementally so Update and Forecast are O(1).
type SlidingMean struct {
	name string
	ring *series.Ring
	sum  float64
}

// NewSlidingMean returns a sliding-window mean over windows of w values.
// It panics if w < 1.
func NewSlidingMean(w int) *SlidingMean {
	return &SlidingMean{name: fmt.Sprintf("sw_mean_%d", w), ring: series.NewRing(w)}
}

// Name implements Forecaster.
func (f *SlidingMean) Name() string { return f.name }

// Update implements Forecaster.
func (f *SlidingMean) Update(v float64) {
	if f.ring.Full() {
		f.sum -= f.ring.At(0)
	}
	f.ring.Push(v)
	f.sum += v
}

// Forecast implements Forecaster.
func (f *SlidingMean) Forecast() (float64, bool) {
	n := f.ring.Len()
	if n == 0 {
		return 0, false
	}
	return f.sum / float64(n), true
}

// SlidingMedian predicts the median of the last w measurements.
type SlidingMedian struct {
	name string
	win  ringWindow
}

// NewSlidingMedian returns a sliding-window median over windows of w values.
// It panics if w < 1.
func NewSlidingMedian(w int) *SlidingMedian {
	return &SlidingMedian{name: fmt.Sprintf("sw_median_%d", w), win: newRingWindow(w)}
}

// Name implements Forecaster.
func (f *SlidingMedian) Name() string { return f.name }

// Update implements Forecaster.
func (f *SlidingMedian) Update(v float64) { f.win.ring.Push(v) }

// Forecast implements Forecaster.
func (f *SlidingMedian) Forecast() (float64, bool) {
	if f.win.ring.Len() == 0 {
		return 0, false
	}
	f.win.scratch = f.win.ring.Values(f.win.scratch)
	return stats.Median(f.win.scratch), true
}

// TrimmedMean predicts the alpha-trimmed mean of the last w measurements:
// the window is sorted and the lowest and highest trim fraction discarded
// before averaging. This is the NWS "trimmed" family, robust to the spikes a
// briefly scheduled interactive job injects into an availability series.
type TrimmedMean struct {
	name string
	trim float64
	win  ringWindow
}

// NewTrimmedMean returns an alpha-trimmed sliding mean. It panics if w < 1
// or trim is outside [0, 0.5).
func NewTrimmedMean(w int, trim float64) *TrimmedMean {
	if trim < 0 || trim >= 0.5 {
		panic("forecast: TrimmedMean trim must be in [0,0.5)")
	}
	return &TrimmedMean{
		name: fmt.Sprintf("sw_trim_%d_%02.0f", w, trim*100),
		trim: trim,
		win:  newRingWindow(w),
	}
}

// Name implements Forecaster.
func (f *TrimmedMean) Name() string { return f.name }

// Update implements Forecaster.
func (f *TrimmedMean) Update(v float64) { f.win.ring.Push(v) }

// Forecast implements Forecaster.
func (f *TrimmedMean) Forecast() (float64, bool) {
	if f.win.ring.Len() == 0 {
		return 0, false
	}
	f.win.scratch = f.win.ring.Values(f.win.scratch)
	return stats.TrimmedMean(f.win.scratch, f.trim), true
}

// AdaptiveWindow predicts the mean (or median) of a window whose length
// adapts to the series: after each measurement it scores every candidate
// window length against the value just seen and uses the cumulatively best
// length for the next forecast. This mirrors the NWS adaptive-window
// predictors.
type AdaptiveWindow struct {
	name      string
	useMedian bool
	lengths   []int
	errs      []float64 // cumulative absolute error per candidate length
	win       ringWindow
}

// NewAdaptiveWindowMean returns an adaptive-window mean predictor choosing
// among the given window lengths. It panics if lengths is empty or contains
// a non-positive length.
func NewAdaptiveWindowMean(lengths ...int) *AdaptiveWindow {
	return newAdaptiveWindow("adapt_mean", false, lengths)
}

// NewAdaptiveWindowMedian returns an adaptive-window median predictor.
func NewAdaptiveWindowMedian(lengths ...int) *AdaptiveWindow {
	return newAdaptiveWindow("adapt_median", true, lengths)
}

func newAdaptiveWindow(name string, useMedian bool, lengths []int) *AdaptiveWindow {
	if len(lengths) == 0 {
		panic("forecast: AdaptiveWindow needs at least one length")
	}
	maxLen := 0
	for _, l := range lengths {
		if l < 1 {
			panic("forecast: AdaptiveWindow lengths must be positive")
		}
		if l > maxLen {
			maxLen = l
		}
	}
	return &AdaptiveWindow{
		name:      name,
		useMedian: useMedian,
		lengths:   append([]int(nil), lengths...),
		errs:      make([]float64, len(lengths)),
		win:       newRingWindow(maxLen),
	}
}

// Name implements Forecaster.
func (f *AdaptiveWindow) Name() string { return f.name }

// Update implements Forecaster.
func (f *AdaptiveWindow) Update(v float64) {
	// Score each candidate length's forecast against the arriving value,
	// then absorb the value into the window.
	if f.win.ring.Len() > 0 {
		for i, l := range f.lengths {
			p := f.predictWith(l)
			d := p - v
			if d < 0 {
				d = -d
			}
			f.errs[i] += d
		}
	}
	f.win.ring.Push(v)
}

// Forecast implements Forecaster.
func (f *AdaptiveWindow) Forecast() (float64, bool) {
	if f.win.ring.Len() == 0 {
		return 0, false
	}
	best := 0
	for i := range f.lengths {
		if f.errs[i] < f.errs[best] {
			best = i
		}
	}
	return f.predictWith(f.lengths[best]), true
}

// BestLength returns the currently selected window length (for diagnostics
// and ablation reporting).
func (f *AdaptiveWindow) BestLength() int {
	best := 0
	for i := range f.lengths {
		if f.errs[i] < f.errs[best] {
			best = i
		}
	}
	return f.lengths[best]
}

func (f *AdaptiveWindow) predictWith(l int) float64 {
	f.win.scratch = f.win.ring.Tail(l, f.win.scratch)
	if f.useMedian {
		return stats.Median(f.win.scratch)
	}
	return stats.Mean(f.win.scratch)
}
