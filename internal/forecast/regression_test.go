package forecast

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestForecastCounterCountsOnlyExternalCalls pins the semantics of
// nws_forecast_engine_forecasts_total: only Engine.Forecast increments it.
// The seed implementation routed the selector's own bookkeeping (one
// selection per Update) and the derived views (BestMethod, ForecastInterval)
// through Forecast, inflating the counter several-fold over the forecasts
// actually served to callers.
func TestForecastCounterCountsOnlyExternalCalls(t *testing.T) {
	e := NewDefaultEngine()
	rng := rand.New(rand.NewSource(41))

	before := mEngineForecasts.Value()
	for i := 0; i < 500; i++ {
		e.Update(rng.Float64())
		e.BestMethod()
		e.ForecastInterval(0.9)
	}
	if got := mEngineForecasts.Value() - before; got != 0 {
		t.Fatalf("internal reads incremented forecasts_total by %d, want 0", got)
	}

	const external = 37
	for i := 0; i < external; i++ {
		if _, ok := e.Forecast(); !ok {
			t.Fatal("Forecast not ok after 500 updates")
		}
	}
	if got := mEngineForecasts.Value() - before; got != external {
		t.Fatalf("forecasts_total delta = %d, want exactly %d external calls", got, external)
	}
}

// TestSlidingMeanDriftBounded drives a SlidingMean through ten million
// updates of a large-magnitude, heavily cancelling series and checks the
// maintained sum against a compensated fresh sum of the ring contents. The
// periodic resynchronization pins the drift at one window's worth of
// roundoff; without it the incremental sum random-walks away without bound.
func TestSlidingMeanDriftBounded(t *testing.T) {
	const w = 50
	f := NewSlidingMean(w)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000_000; i++ {
		// Large offsets of alternating sign force cancellation in the
		// add/subtract updates, the worst case for incremental drift.
		v := 1e9 + 1e9*rng.Float64()
		if i%2 == 1 {
			v = -v
		}
		f.Update(v)
	}

	var sum, c float64
	for i := 0; i < f.ring.Len(); i++ {
		y := f.ring.At(i) - c
		tt := sum + y
		c = (tt - sum) - y
		sum = tt
	}
	// Between resyncs at most ~2*Cap add/subtract operations touch the sum,
	// each erring by at most one ulp of a window-sum-sized quantity.
	scale := math.Abs(sum)
	for i := 0; i < f.ring.Len(); i++ {
		if a := math.Abs(f.ring.At(i)); a > scale {
			scale = a
		}
	}
	tol := 4 * w * 0x1p-52 * scale
	if diff := math.Abs(f.sum - sum); diff > tol {
		t.Fatalf("incremental sum drifted %g from fresh sum %g (tolerance %g)", diff, sum, tol)
	}
}

// TestTriggLeachFlatSeriesFallback pins the documented 0.5 fallback gain: on
// a perfectly flat series the smoothed absolute error stays zero, the
// tracking ratio would be 0/0, and the forecaster must keep forecasting the
// level exactly instead of poisoning its state with NaN.
func TestTriggLeachFlatSeriesFallback(t *testing.T) {
	const level = 0.375 // exactly representable
	f := NewTriggLeach(0.2)
	for i := 0; i < 1000; i++ {
		f.Update(level)
		v, ok := f.Forecast()
		if !ok {
			t.Fatal("Forecast not ok after Update")
		}
		if math.IsNaN(v) {
			t.Fatalf("step %d: forecast is NaN", i)
		}
		if v != level {
			t.Fatalf("step %d: forecast = %v, want exactly %v", i, v, level)
		}
	}
	if f.ae != 0 {
		t.Fatalf("smoothed absolute error = %v on a flat series, want 0 (fallback path not exercised)", f.ae)
	}
}

// TestSelectionCountsDeterministic runs two identical engines over the same
// series and requires identical selection dynamics, and checks the documented
// ordering: descending count, ties broken by ascending name.
func TestSelectionCountsDeterministic(t *testing.T) {
	run := func() *Engine {
		e := NewWindowedEngine(ByMAE, 25, DefaultBank()...)
		rng := rand.New(rand.NewSource(43))
		v := 0.6
		for i := 0; i < 2000; i++ {
			v += 0.05 * (rng.Float64() - 0.5)
			e.Update(v)
		}
		return e
	}
	a, b := run().SelectionCounts(), run().SelectionCounts()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical runs produced different SelectionCounts:\n%v\n%v", a, b)
	}
	total := 0
	for i, mc := range a {
		total += mc.Count
		if i == 0 {
			continue
		}
		prev := a[i-1]
		if mc.Count > prev.Count {
			t.Fatalf("counts not descending: %v before %v", prev, mc)
		}
		if mc.Count == prev.Count && mc.Name <= prev.Name {
			t.Fatalf("tie at count %d not in ascending name order: %q before %q", mc.Count, prev.Name, mc.Name)
		}
	}
	// Every Update selects exactly one member (the bank forecasts from the
	// first measurement on).
	if total != 2000 {
		t.Fatalf("selection counts sum to %d, want 2000", total)
	}
}

// refScore is the brute-force reference selection scorer: it keeps every
// member's full error history in a slice and re-sums the relevant span from
// scratch on every query, exactly as the seed engine scored its rings.
type refMember struct {
	f          Forecaster
	pending    float64
	hasPending bool
	errAbs     []float64
	errSq      []float64
}

func (m *refMember) score(by SelectBy, window int) float64 {
	errs := m.errAbs
	if by == ByMSE {
		errs = m.errSq
	}
	if len(errs) == 0 {
		return math.Inf(1)
	}
	start := 0
	if window > 0 && len(errs) > window {
		start = len(errs) - window
	}
	var sum float64
	for _, e := range errs[start:] {
		sum += e
	}
	return sum / float64(len(errs)-start)
}

// TestWindowedSelectionMatchesBruteForce drives windowed engines alongside an
// independent slice-backed reference scorer over a random series and requires
// the selected member to agree at every step. This is the end-to-end check
// that the incremental windowed sums (with their near-tie refinement) never
// change which member the engine forwards — including the exact ties between
// members that track the series identically, which the reference breaks by
// bank order just as the seed did.
func TestWindowedSelectionMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name   string
		by     SelectBy
		window int
	}{
		{"mae_w5", ByMAE, 5},
		{"mae_w25", ByMAE, 25},
		{"mse_w25", ByMSE, 25},
		{"mae_w50", ByMAE, 50},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewWindowedEngine(tc.by, tc.window, DefaultBank()...)
			refBank := DefaultBank()
			ref := make([]*refMember, len(refBank))
			for i, f := range refBank {
				ref[i] = &refMember{f: f}
			}

			rng := rand.New(rand.NewSource(44))
			v := 0.5
			for step := 0; step < 3000; step++ {
				switch {
				case rng.Float64() < 0.01:
					v = rng.Float64() // occasional level shift
				case step%7 == 0:
					// flat stretches provoke exact score ties
				default:
					v += 0.02 * (rng.Float64() - 0.5)
				}
				e.Update(v)

				best := -1
				bestScore := math.Inf(1)
				for i, m := range ref {
					if m.hasPending {
						d := m.pending - v
						m.errAbs = append(m.errAbs, math.Abs(d))
						m.errSq = append(m.errSq, d*d)
					}
					m.f.Update(v)
					m.pending, m.hasPending = m.f.Forecast()
					if !m.hasPending {
						continue
					}
					if s := m.score(tc.by, tc.window); best == -1 || s < bestScore {
						best, bestScore = i, s
					}
				}
				want := ""
				if best >= 0 {
					want = ref[best].f.Name()
				}
				if got := e.BestMethod(); got != want {
					t.Fatalf("step %d: engine selected %q, brute force selected %q", step, got, want)
				}
			}
		})
	}
}
