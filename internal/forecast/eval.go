package forecast

import (
	"errors"
	"math"
)

// EvalResult summarizes running a forecaster over a complete series.
type EvalResult struct {
	N         int       // number of scored one-step forecasts
	MAE       float64   // mean absolute one-step-ahead error (Eq. 5 form)
	RMSE      float64   // root mean squared one-step-ahead error
	Forecasts []float64 // Forecasts[i] is the prediction for values[i]; NaN when unavailable
}

// Evaluate replays values through a fresh run of f, recording for each
// element the forecast that was issued before it arrived and scoring it
// against the element. The first element is never scored (no history).
//
// This computes the paper's one-step-ahead prediction error (Equation 5) for
// a single method over a measurement series.
func Evaluate(f Forecaster, values []float64) (EvalResult, error) {
	if len(values) == 0 {
		return EvalResult{}, errors.New("forecast: Evaluate on empty series")
	}
	res := EvalResult{Forecasts: make([]float64, len(values))}
	var sumAbs, sumSq float64
	for i, v := range values {
		pred, ok := f.Forecast()
		if ok {
			res.Forecasts[i] = pred
			d := pred - v
			sumAbs += math.Abs(d)
			sumSq += d * d
			res.N++
		} else {
			res.Forecasts[i] = math.NaN()
		}
		f.Update(v)
	}
	if res.N > 0 {
		res.MAE = sumAbs / float64(res.N)
		res.RMSE = math.Sqrt(sumSq / float64(res.N))
	}
	return res, nil
}

// EvaluateEngine replays values through a fresh engine built by newEngine
// and returns both the engine's own evaluation and the final per-method
// report. newEngine is a constructor so that callers can choose the bank and
// selection criterion; pass NewDefaultEngine for the paper's configuration.
func EvaluateEngine(newEngine func() *Engine, values []float64) (EvalResult, []MethodError, error) {
	if len(values) == 0 {
		return EvalResult{}, nil, errors.New("forecast: EvaluateEngine on empty series")
	}
	e := newEngine()
	res := EvalResult{Forecasts: make([]float64, len(values))}
	var sumAbs, sumSq float64
	for i, v := range values {
		pred, ok := e.Forecast()
		if ok {
			res.Forecasts[i] = pred.Value
			d := pred.Value - v
			sumAbs += math.Abs(d)
			sumSq += d * d
			res.N++
		} else {
			res.Forecasts[i] = math.NaN()
		}
		e.Update(v)
	}
	if res.N > 0 {
		res.MAE = sumAbs / float64(res.N)
		res.RMSE = math.Sqrt(sumSq / float64(res.N))
	}
	return res, e.Report(), nil
}
