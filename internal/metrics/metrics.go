package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metricKind discriminates the three family types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64 // IEEE-754 bits of the float64 value
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative-on-exposition
// buckets, plus a running sum and count — enough to derive rates, means,
// and quantile estimates from scrapes. All methods are safe for concurrent
// use.
type Histogram struct {
	bounds []float64       // sorted inclusive upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1; non-cumulative per bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; past the end means +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since t0 — the idiom for the
// *_seconds latency histograms.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// atomicFloat is a float64 updated with CAS loops.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, nu) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// DefLatencyBuckets are the default bounds for request-latency histograms,
// in seconds: 100µs to 10s, roughly half-decade steps.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bounds starting at start, each factor times
// the previous. It panics on a non-positive start, a factor <= 1, or n < 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start, spaced width apart. It
// panics on a non-positive width or n < 1.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("metrics: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// labelSep joins label values into child-map keys; label values containing
// the separator byte are sanitized at With time (NUL → U+FFFD) so values
// taken from untrusted input can never corrupt keys or crash the caller.
const labelSep = "\x00"

// child is one labeled time series inside a family.
type child struct {
	labelValues []string
	metric      any // *Counter, *Gauge, or *Histogram
}

// family is one named metric with all its label combinations.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
}

// get resolves (creating if needed) the child for one label-value tuple.
func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	sanitized := false
	for i, v := range values {
		if strings.Contains(v, labelSep) {
			if !sanitized {
				values = append([]string(nil), values...)
				sanitized = true
			}
			values[i] = strings.ReplaceAll(v, labelSep, "�")
		}
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c.metric
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.metric = &Counter{}
	case kindGauge:
		c.metric = &Gauge{}
	case kindHistogram:
		c.metric = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c.metric
}

// sortedChildren returns the children ordered by label values, for stable
// exposition.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ fam *family }

// With returns the counter for one label-value combination, creating it on
// first use. It panics on a label-count mismatch.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.get(labelValues).(*Counter)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ fam *family }

// With returns the gauge for one label-value combination, creating it on
// first use. It panics on a label-count mismatch.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.get(labelValues).(*Gauge)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ fam *family }

// With returns the histogram for one label-value combination, creating it
// on first use. It panics on a label-count mismatch.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.get(labelValues).(*Histogram)
}

// Registry holds metric families and renders them. The zero value is not
// usable; create registries with NewRegistry or use Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry the package-level constructors and
// the daemons use.
var Default = NewRegistry()

func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", name, l))
		}
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			buckets = DefLatencyBuckets
		}
		buckets = append([]float64(nil), buckets...)
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("metrics: %s: histogram buckets must be sorted", name))
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] == buckets[i-1] {
				panic(fmt.Sprintf("metrics: %s: duplicate histogram bucket %g", name, buckets[i]))
			}
		}
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.families[name] = f
	return f
}

// sortedFamilies returns the families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: NewCounterVec needs at least one label (use NewCounter)")
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, labels, nil)}
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("metrics: NewGaugeVec needs at least one label (use NewGauge)")
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, labels, nil)}
}

// NewHistogram registers and returns an unlabeled histogram with the given
// inclusive upper bounds (nil selects DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, nil, buckets).get(nil).(*Histogram)
}

// NewHistogramVec registers a histogram family with the given bounds (nil
// selects DefLatencyBuckets) and label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("metrics: NewHistogramVec needs at least one label (use NewHistogram)")
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets)}
}

// NewCounter registers an unlabeled counter in Default.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewCounterVec registers a labeled counter family in Default.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// NewGauge registers an unlabeled gauge in Default.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewGaugeVec registers a labeled gauge family in Default.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labels...)
}

// NewHistogram registers an unlabeled histogram in Default.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.NewHistogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family in Default.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, buckets, labels...)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
