package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format byte-for-byte: a
// scraper-visible change must update this test deliberately.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.NewCounter("nws_test_ops_total", "Operations performed.")
	c.Add(42)

	v := r.NewCounterVec("nws_test_requests_total", "Requests by op.", "op")
	v.With("store").Add(3)
	v.With("fetch").Inc()

	g := r.NewGauge("nws_test_backlog_points", "Buffered points.")
	g.Set(7.5)

	h := r.NewHistogram("nws_test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	esc := r.NewGaugeVec("nws_test_escaped", "Line one\nline two.", "path")
	esc.With(`a"b\c` + "\nd").Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP nws_test_backlog_points Buffered points.
# TYPE nws_test_backlog_points gauge
nws_test_backlog_points 7.5
# HELP nws_test_escaped Line one\nline two.
# TYPE nws_test_escaped gauge
nws_test_escaped{path="a\"b\\c\nd"} 1
# HELP nws_test_latency_seconds Latency.
# TYPE nws_test_latency_seconds histogram
nws_test_latency_seconds_bucket{le="0.01"} 1
nws_test_latency_seconds_bucket{le="0.1"} 3
nws_test_latency_seconds_bucket{le="1"} 3
nws_test_latency_seconds_bucket{le="+Inf"} 4
nws_test_latency_seconds_sum 5.105
nws_test_latency_seconds_count 4
# HELP nws_test_ops_total Operations performed.
# TYPE nws_test_ops_total counter
nws_test_ops_total 42
# HELP nws_test_requests_total Requests by op.
# TYPE nws_test_requests_total counter
nws_test_requests_total{op="fetch"} 1
nws_test_requests_total{op="store"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusSkipsEmptyVec(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("nws_never_used_total", "No children yet.", "op")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty vec produced output:\n%s", b.String())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("snap_total", "Count.").Add(5)
	h := r.NewHistogram("snap_seconds", "Lat.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)
	gv := r.NewGaugeVec("snap_depth", "Depth.", "host")
	gv.With("thing1").Set(3)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("families = %d, want 3", len(snap))
	}
	// Sorted by name: snap_depth, snap_seconds, snap_total.
	if snap[0].Name != "snap_depth" || snap[1].Name != "snap_seconds" || snap[2].Name != "snap_total" {
		t.Fatalf("order = %s, %s, %s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if got := snap[2].Metrics[0].Value; got != 5 {
		t.Errorf("counter value = %g", got)
	}
	hm := snap[1].Metrics[0]
	if hm.Count != 2 || hm.Sum != 20.5 {
		t.Errorf("histogram count=%d sum=%g", hm.Count, hm.Sum)
	}
	wantBuckets := []BucketSnapshot{{"1", 1}, {"10", 1}, {"+Inf", 2}}
	for i, want := range wantBuckets {
		if hm.Buckets[i] != want {
			t.Errorf("bucket %d = %+v, want %+v", i, hm.Buckets[i], want)
		}
	}
	gm := snap[0].Metrics[0]
	if len(gm.LabelValues) != 1 || gm.LabelValues[0] != "thing1" || gm.Value != 3 {
		t.Errorf("gauge = %+v", gm)
	}

	// The snapshot must round-trip through encoding/json.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back []FamilySnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[1].Metrics[0].Buckets[2].LE != "+Inf" {
		t.Errorf("round trip lost data: %+v", back)
	}
}
