package metrics

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are write failures to a gone client.
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler returns an http.Handler serving the registry snapshot as
// JSON — mount it at /metrics.json.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}

// NewDebugMux returns a mux with the full observability surface:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   JSON snapshot of reg
//	/debug/vars     expvar (Go runtime memstats, cmdline)
//	/debug/pprof/   net/http/pprof profiles (heap, profile, trace, …)
//
// Registering pprof on a private mux rather than http.DefaultServeMux keeps
// the profiling surface off any application listener.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/metrics.json", JSONHandler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running metrics/profiling HTTP server.
type DebugServer struct {
	addr string
	srv  *http.Server
	ln   net.Listener

	mu     sync.Mutex
	closed bool
}

// ServeDebug binds addr (":0" for an ephemeral port) and serves NewDebugMux
// for reg in a background goroutine. Close shuts it down.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: NewDebugMux(reg)},
		ln:   ln,
	}
	go func() { _ = ds.srv.Serve(ln) }()
	return ds, nil
}

// Addr returns the bound listen address.
func (ds *DebugServer) Addr() string { return ds.addr }

// Close stops the server. It is idempotent.
func (ds *DebugServer) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return nil
	}
	ds.closed = true
	return ds.srv.Close()
}
