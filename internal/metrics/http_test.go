package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("http_test_total", "Via HTTP.").Add(9)

	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "http_test_total 9") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}

	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: code=%d", code)
	}
	var snap []FamilySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if len(snap) != 1 || snap[0].Name != "http_test_total" {
		t.Errorf("/metrics.json: %+v", snap)
	}

	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code=%d", code)
	}

	code, _ = get("/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/: code=%d", code)
	}

	if err := ds.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
