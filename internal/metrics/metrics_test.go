package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a counter")
	v := r.NewCounterVec("test_labeled_total", "a labeled counter", "op")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With("store").Inc()
				v.With("fetch").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := v.With("store").Value(); got != workers*perWorker {
		t.Errorf("store = %d, want %d", got, workers*perWorker)
	}
	if got := v.With("fetch").Value(); got != 2*workers*perWorker {
		t.Errorf("fetch = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "a gauge")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Inc()
				g.Add(2)
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 2*workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, 2*workers*perWorker)
	}
	g.Set(-4.5)
	if got := g.Value(); got != -4.5 {
		t.Errorf("after Set: %g", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_seconds", "a histogram", []float64{1, 2, 4})
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.5)
				h.Observe(3)
				h.Observe(100)
			}
		}()
	}
	wg.Wait()
	const n = workers * perWorker
	if got := h.Count(); got != 3*n {
		t.Errorf("count = %d, want %d", got, 3*n)
	}
	if got, want := h.Sum(), float64(n)*(0.5+3+100); math.Abs(got-want) > 1e-6 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	wantCounts := []uint64{n, 0, n, n} // (<=1, <=2, <=4, +Inf) non-cumulative
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_bounds", "boundary semantics", []float64{1, 2, 4})
	// Prometheus buckets are inclusive upper bounds: v == bound lands in
	// that bucket, not the next.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {1, 0}, // exactly on the first bound
		{1.0000001, 1}, {2, 1},
		{2.5, 2}, {4, 2},
		{4.0000001, 3}, {math.Inf(1), 3},
	}
	for _, c := range cases {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(c.v)
		for i := range h.counts {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%g): bucket %d = %d, want %d", c.v, i, got, want)
			}
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if exp[i] != want {
			t.Errorf("ExponentialBuckets[%d] = %g, want %g", i, exp[i], want)
		}
	}
	lin := LinearBuckets(0, 2.5, 3)
	for i, want := range []float64{0, 2.5, 5} {
		if lin[i] != want {
			t.Errorf("LinearBuckets[%d] = %g, want %g", i, lin[i], want)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	cases := []struct {
		name string
		fn   func()
	}{
		{"duplicate name", func() { r.NewCounter("dup_total", "") }},
		{"bad metric name", func() { r.NewCounter("9starts-with-digit", "") }},
		{"bad label name", func() { r.NewCounterVec("ok_total", "", "bad-label") }},
		{"vec without labels", func() { r.NewCounterVec("ok2_total", "") }},
		{"unsorted buckets", func() { r.NewHistogram("h1_seconds", "", []float64{2, 1}) }},
		{"duplicate buckets", func() { r.NewHistogram("h2_seconds", "", []float64{1, 1}) }},
		{"label count mismatch", func() {
			v := r.NewCounterVec("v_total", "", "op")
			v.With("a", "b")
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestVecReturnsSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("same_total", "", "op")
	a, b := v.With("x"), v.With("x")
	if a != b {
		t.Fatal("With returned distinct children for equal labels")
	}
	if v.With("y") == a {
		t.Fatal("distinct labels share a child")
	}
}

// Label values arrive from untrusted wire input in the daemons, so a NUL
// byte must be sanitized, not panic (a panic here was a remote DoS).
func TestNULLabelValueSanitized(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("nul_total", "", "op")
	v.With("a\x00b").Inc()
	if v.With("a\x00b") != v.With("a�b") {
		t.Error("NUL not mapped to U+FFFD replacement character")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "\x00") {
		t.Errorf("exposition contains a raw NUL byte:\n%s", out)
	}
	if !strings.Contains(out, `nul_total{op="a�b"} 1`) {
		t.Errorf("sanitized series missing from exposition:\n%s", out)
	}
}
