package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in the Prometheus
// text exposition format (version 0.0.4), families sorted by name and
// series by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch m := c.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n",
			f.name, labelString(f.labels, c.labelValues, "", ""), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labels, c.labelValues, "", ""), formatFloat(m.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i := range m.counts {
			cum += m.counts[i].Load()
			le := "+Inf"
			if i < len(m.bounds) {
				le = formatFloat(m.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, c.labelValues, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelString(f.labels, c.labelValues, "", ""), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelString(f.labels, c.labelValues, "", ""), m.Count())
		return err
	}
	return nil
}

// labelString renders {a="x",b="y"} (with an optional extra pair appended,
// used for the histogram "le" label), or "" when there are no labels.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(h string) string { return helpEscaper.Replace(h) }

// formatFloat renders a float the way Prometheus expects, including the
// special +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FamilySnapshot is one metric family in marshal-ready form.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    string           `json:"type"`
	Labels  []string         `json:"labels,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one time series of a family. Counters and gauges fill
// Value; histograms fill Count, Sum, and Buckets (cumulative counts).
type MetricSnapshot struct {
	LabelValues []string         `json:"labelValues,omitempty"`
	Value       float64          `json:"value"`
	Count       uint64           `json:"count,omitempty"`
	Sum         float64          `json:"sum,omitempty"`
	Buckets     []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket; LE is the inclusive
// upper bound rendered as a string so "+Inf" survives JSON.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot returns the state of every family, sorted by name, for JSON
// APIs and dashboards.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Type:   f.kind.String(),
			Labels: f.labels,
		}
		for _, c := range f.sortedChildren() {
			ms := MetricSnapshot{LabelValues: c.labelValues}
			switch m := c.metric.(type) {
			case *Counter:
				ms.Value = float64(m.Value())
			case *Gauge:
				ms.Value = m.Value()
			case *Histogram:
				ms.Count = m.Count()
				ms.Sum = m.Sum()
				ms.Value = ms.Sum
				cum := uint64(0)
				for i := range m.counts {
					cum += m.counts[i].Load()
					le := "+Inf"
					if i < len(m.bounds) {
						le = formatFloat(m.bounds[i])
					}
					ms.Buckets = append(ms.Buckets, BucketSnapshot{LE: le, Count: cum})
				}
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		out = append(out, fs)
	}
	return out
}
