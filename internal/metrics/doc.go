// Package metrics is a small, dependency-free, concurrency-safe metrics
// registry for the NWS daemons: counters, gauges, and fixed-bucket
// histograms, with optional label dimensions, a Prometheus text-format
// exposition writer, and a JSON snapshot API.
//
// The paper's whole argument rests on quantifying sensor and forecaster
// behaviour over long-running monitoring processes; this package makes the
// monitoring processes themselves cheaply observable. Every daemon hot path
// (memory stores and fetches, name-server registrations, forecast queries,
// sensor measurement loops) records into package-level metric families, and
// cmd/nwsd exposes them over HTTP together with net/http/pprof profiling
// endpoints.
//
// # Model
//
// A metric family has a name, a help string, a type, and zero or more label
// names. Unlabeled constructors (NewCounter, NewGauge, NewHistogram) return
// the single time series directly; labeled constructors (NewCounterVec, …)
// return a vector whose With(labelValues…) method resolves — creating on
// first use — the series for one label combination:
//
//	var (
//	    reqs = metrics.NewCounterVec(
//	        "nws_memory_requests_total", "Requests handled.", "op")
//	    lat = metrics.NewHistogramVec(
//	        "nws_memory_request_seconds", "Request latency.", nil, "op")
//	)
//
//	t0 := time.Now()
//	// ... handle ...
//	reqs.With("store").Inc()
//	lat.With("store").ObserveSince(t0)
//
// All mutating operations (Inc, Add, Set, Observe) are lock-free atomic
// updates safe for concurrent use; With performs one map lookup under a
// read lock on the steady path. Resolve label series once and hold the
// handle where a path is truly hot.
//
// # Exposition
//
// Registry.WritePrometheus emits the classic Prometheus text format
// (the format every scraper understands); Registry.Snapshot returns the
// same data as marshal-ready structs for JSON APIs. Handler and
// JSONHandler wrap them as http.Handlers, and ServeDebug stands up a
// full debug server with /metrics, /metrics.json, /debug/vars, and
// /debug/pprof/… — see cmd/nwsd's -metrics flag and docs/OBSERVABILITY.md.
//
// The package-level constructors register into Default, which is what the
// daemons use; NewRegistry gives tests and embedders an isolated registry.
package metrics
