package sched

import (
	"testing"

	"nwscpu/internal/workload"
)

func TestRunDynamicValidation(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}}, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("zero quantum accepted")
		}
	}()
	c.RunDynamic(MakeTasks(1, 10), PolicyForecast, 1, 0)
}

func TestRunDynamicCompletesAllTasks(t *testing.T) {
	c := NewCluster([]workload.Profile{
		{Name: "a", Seed: 1}, {Name: "b", Seed: 2},
	}, 20000)
	c.Warmup(120, 10)
	tasks := MakeTasks(6, 20)
	res := c.RunDynamic(tasks, PolicyForecast, 3, 10)

	total := 0
	for _, d := range res.Dispatches {
		total += d
	}
	if total != len(tasks) {
		t.Fatalf("dispatched %d tasks, want %d", total, len(tasks))
	}
	if res.Makespan <= 0 || res.MeanCompletion <= 0 || res.MeanCompletion > res.Makespan {
		t.Fatalf("makespan %v mean %v", res.Makespan, res.MeanCompletion)
	}
	// 6 x 20 CPU-s over 2 idle hosts, one at a time per host: ~60 s + a few
	// quanta of dispatch latency.
	if res.Makespan < 50 || res.Makespan > 120 {
		t.Fatalf("makespan = %v, want ~60-90", res.Makespan)
	}
	for i, p := range res.Placements {
		if p < 0 || p > 1 {
			t.Fatalf("placement %d = %d", i, p)
		}
	}
}

func TestRunDynamicAvoidsBusyHost(t *testing.T) {
	horizon := 20000.0
	profiles := testProfiles(horizon) // idle, busy (job churn), conundrum
	c := NewCluster(profiles, horizon)
	c.Warmup(600, 10)
	res := c.RunDynamic(MakeTasks(9, 20), PolicyForecast, 4, 10)
	// The idle host should execute at least as many tasks as the busy one:
	// it finishes faster, so self-scheduling naturally feeds it more.
	if res.Dispatches[0] < res.Dispatches[1] {
		t.Fatalf("dispatches = %v; idle host should get at least as many as busy", res.Dispatches)
	}
}

func TestDynamicExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	tasks := MakeTasks(6, 25)
	res := DynamicExperiment(testProfiles(0), tasks, PolicyForecast, 300, 5)
	if res.Makespan <= 0 {
		t.Fatalf("degenerate result: %+v", res.Result)
	}
	// Self-scheduling should be competitive with static forecast placement.
	static := Experiment(testProfiles(0), tasks, PolicyForecast, 300, 5)
	if res.Makespan > static.Makespan*1.6 {
		t.Fatalf("dynamic makespan %v much worse than static %v", res.Makespan, static.Makespan)
	}
}
