package sched

import (
	"math"
	"testing"
)

func TestTransferComputeETA(t *testing.T) {
	f := ResourceForecasts{Avail: 0.5, Bandwidth: 1 << 20, Latency: 0.01}
	eta, err := TransferComputeETA(10<<20, 30, f)
	if err != nil {
		t.Fatal(err)
	}
	// 0.01 + 10s transfer + 60s compute.
	if math.Abs(eta-70.01) > 1e-9 {
		t.Fatalf("ETA = %v, want 70.01", eta)
	}
	// No data: no bandwidth needed.
	eta, err = TransferComputeETA(0, 30, ResourceForecasts{Avail: 1})
	if err != nil || eta != 30 {
		t.Fatalf("compute-only ETA = %v, %v", eta, err)
	}
}

func TestTransferComputeETAValidation(t *testing.T) {
	good := ResourceForecasts{Avail: 0.5, Bandwidth: 1, Latency: 0}
	cases := []struct {
		data, cpu float64
		f         ResourceForecasts
	}{
		{-1, 1, good},
		{1, -1, good},
		{1, 1, ResourceForecasts{Avail: 0, Bandwidth: 1}},
		{1, 1, ResourceForecasts{Avail: 1.5, Bandwidth: 1}},
		{1, 1, ResourceForecasts{Avail: 0.5, Bandwidth: 0}},
		{1, 1, ResourceForecasts{Avail: 0.5, Bandwidth: 1, Latency: -1}},
	}
	for i, c := range cases {
		if _, err := TransferComputeETA(c.data, c.cpu, c.f); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPlaceDataTasksPrefersNearbyHostForDataHeavyWork(t *testing.T) {
	hosts := []ResourceForecasts{
		{Avail: 1.0, Bandwidth: 1 << 20, Latency: 0.1},     // fast CPU, slow link
		{Avail: 0.5, Bandwidth: 100 << 20, Latency: 0.001}, // slower CPU, fast link
	}
	// Data-heavy, compute-light task: the fast link wins.
	dataHeavy := []DataTask{{ID: 0, DataBytes: 100 << 20, Demand: 5}}
	p, _, err := PlaceDataTasks(dataHeavy, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 {
		t.Fatalf("data-heavy task placed on %d, want the fast-link host", p[0])
	}
	// Compute-heavy, data-light task: the fast CPU wins.
	computeHeavy := []DataTask{{ID: 0, DataBytes: 1 << 10, Demand: 600}}
	p, _, err = PlaceDataTasks(computeHeavy, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0 {
		t.Fatalf("compute-heavy task placed on %d, want the fast-CPU host", p[0])
	}
}

func TestPlaceDataTasksBalancesQueues(t *testing.T) {
	hosts := []ResourceForecasts{
		{Avail: 1, Bandwidth: 1 << 30, Latency: 0},
		{Avail: 1, Bandwidth: 1 << 30, Latency: 0},
	}
	tasks := make([]DataTask, 4)
	for i := range tasks {
		tasks[i] = DataTask{ID: i, Demand: 10}
	}
	p, finish, err := PlaceDataTasks(tasks, hosts)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, h := range p {
		counts[h]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("placements %v, want an even split", p)
	}
	if math.Abs(finish[0]-20) > 1e-9 || math.Abs(finish[1]-20) > 1e-9 {
		t.Fatalf("finish = %v, want [20 20]", finish)
	}
}

func TestPlaceDataTasksValidation(t *testing.T) {
	if _, _, err := PlaceDataTasks(nil, nil); err == nil {
		t.Fatal("no hosts accepted")
	}
	if _, _, err := PlaceDataTasks([]DataTask{{Demand: 1}},
		[]ResourceForecasts{{Avail: 0}}); err == nil {
		t.Fatal("bad forecast accepted")
	}
}
