// Package sched demonstrates the paper's motivating use case: dynamic
// application scheduling driven by CPU availability predictions. Predicted
// availability is used as an expansion factor — a task needing D CPU-seconds
// on a host predicted to be fraction a available is expected to take D/a
// wall seconds (Section 2 of the paper) — and a greedy list scheduler places
// each task on the host with the earliest predicted completion.
//
// Three policies are compared, mirroring the systems the paper cites:
//
//   - PolicyForecast: NWS forecasts over the hybrid sensor series (the
//     paper's proposal, as used by AppLeS).
//   - PolicyLoadAvg: instantaneous 1/(load+1) (what Prophet, Winner and MARS
//     used).
//   - PolicyRandom: uniform random placement (the null baseline).
package sched

import (
	"fmt"
	"math"
	"math/rand"

	"nwscpu/internal/forecast"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// Task is one unit of schedulable work.
type Task struct {
	ID     int
	Demand float64 // CPU seconds
}

// MakeTasks builds n identical tasks of the given demand.
func MakeTasks(n int, demand float64) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: i, Demand: demand}
	}
	return out
}

// Policy selects hosts for tasks.
type Policy int

// Scheduling policies.
const (
	PolicyForecast Policy = iota
	PolicyLoadAvg
	PolicyRandom
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyForecast:
		return "forecast"
	case PolicyLoadAvg:
		return "load_average"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Result summarizes one scheduling experiment.
type Result struct {
	Policy         Policy
	Makespan       float64 // wall time from placement until the last task exits
	MeanCompletion float64 // mean task completion time
	Placements     []int   // Placements[i] = host index of task i
}

// Cluster is a set of simulated hosts under background load, monitored by
// hybrid sensors feeding per-host forecast engines — the environment a grid
// application scheduler sees.
type Cluster struct {
	Names   []string
	hosts   []*simos.Host
	sensors []*sensors.HybridSensor
	engines []*forecast.Engine
}

// NewCluster builds one host per profile and submits each profile's
// workload for the given horizon (warm-up + experiment duration).
func NewCluster(profiles []workload.Profile, horizon float64) *Cluster {
	c := &Cluster{}
	for _, p := range profiles {
		h := simos.New(simos.DefaultConfig())
		workload.Submit(h, p.Generate(horizon))
		sh := sensors.SimHost{H: h}
		c.Names = append(c.Names, p.Name)
		c.hosts = append(c.hosts, h)
		c.sensors = append(c.sensors, sensors.NewHybridSensor(sh, sensors.DefaultHybridConfig()))
		c.engines = append(c.engines, forecast.NewDefaultEngine())
	}
	return c
}

// Warmup advances every host by the given duration while measuring at the
// given cadence, feeding the per-host forecast engines.
func (c *Cluster) Warmup(duration, period float64) {
	for i, h := range c.hosts {
		end := h.Now() + duration
		for epoch := h.Now() + period; epoch <= end; epoch += period {
			h.RunUntil(epoch)
			c.engines[i].Update(c.sensors[i].Measure())
			if h.Now() > epoch {
				// A probe consumed part of the grid; realign.
				k := math.Ceil((h.Now() - epoch) / period)
				epoch += k * period
			}
		}
	}
}

// predictions returns each host's availability estimate under a policy.
func (c *Cluster) predictions(p Policy, rng *rand.Rand) []float64 {
	out := make([]float64, len(c.hosts))
	for i, h := range c.hosts {
		switch p {
		case PolicyForecast:
			if pred, ok := c.engines[i].Forecast(); ok {
				out[i] = pred.Value
			} else {
				out[i] = 0.5
			}
		case PolicyLoadAvg:
			out[i] = 1 / (h.LoadAvg() + 1)
		case PolicyRandom:
			out[i] = rng.Float64()
		}
		if out[i] < 0.01 {
			out[i] = 0.01 // avoid infinite expansion factors
		}
	}
	return out
}

// newRngForPolicy builds the RNG the random policy draws from.
func newRngForPolicy(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Place assigns tasks greedily: each task goes to the host whose predicted
// completion time (queued demand plus this task, divided by predicted
// availability) is smallest. For PolicyRandom the "predictions" are random,
// which makes the placement uniform in expectation.
func (c *Cluster) Place(tasks []Task, p Policy, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	avail := c.predictions(p, rng)
	queued := make([]float64, len(c.hosts))
	placements := make([]int, len(tasks))
	for ti, task := range tasks {
		best, bestETA := 0, math.Inf(1)
		for hi := range c.hosts {
			eta := (queued[hi] + task.Demand) / avail[hi]
			if eta < bestETA {
				best, bestETA = hi, eta
			}
		}
		placements[ti] = best
		queued[best] += task.Demand
	}
	return placements
}

// Execute spawns the tasks per the placement and runs every host until all
// tasks complete, returning the observed makespan and mean completion time.
// All hosts share the same virtual timeline (they were created together and
// advance in lockstep here).
func (c *Cluster) Execute(tasks []Task, placements []int) (makespan, meanCompletion float64) {
	if len(tasks) != len(placements) {
		panic("sched: placements length mismatch")
	}
	start := 0.0
	for _, h := range c.hosts {
		if h.Now() > start {
			start = h.Now()
		}
	}
	// Align all hosts to the same instant before placing.
	for _, h := range c.hosts {
		h.RunUntil(start)
	}
	pids := make([]simos.PID, len(tasks))
	for ti, task := range tasks {
		h := c.hosts[placements[ti]]
		pids[ti] = h.Spawn(simos.ProcSpec{
			Name:   fmt.Sprintf("task%d", task.ID),
			Demand: task.Demand,
		})
	}
	var sum float64
	for ti := range tasks {
		h := c.hosts[placements[ti]]
		for {
			if _, at, ok := h.Exit(pids[ti]); ok {
				done := at - start
				sum += done
				if done > makespan {
					makespan = done
				}
				break
			}
			h.RunUntil(h.Now() + 10)
		}
	}
	if len(tasks) > 0 {
		meanCompletion = sum / float64(len(tasks))
	}
	return makespan, meanCompletion
}

// Experiment runs the full pipeline for one policy: build a cluster over the
// profiles, warm up the sensors, place, execute.
func Experiment(profiles []workload.Profile, tasks []Task, p Policy, warmup float64, seed int64) Result {
	// Horizon covers warm-up plus a generous execution window.
	var totalDemand float64
	for _, t := range tasks {
		totalDemand += t.Demand
	}
	horizon := warmup + 20*totalDemand
	c := NewCluster(profiles, horizon)
	c.Warmup(warmup, 10)
	placements := c.Place(tasks, p, seed)
	makespan, meanC := c.Execute(tasks, placements)
	return Result{Policy: p, Makespan: makespan, MeanCompletion: meanC, Placements: placements}
}
