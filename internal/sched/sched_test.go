package sched

import (
	"math"
	"testing"

	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// testProfiles builds a small cluster with one idle host, one host under a
// full-priority spinner, and one conundrum-style host (nice-19 soaker) whose
// capacity only the forecast policy can see.
func testProfiles(horizon float64) []workload.Profile {
	idle := workload.Profile{Name: "idle", Seed: 1}
	// A host churning short full-priority jobs: busy in a way every sensor
	// (including the probe) agrees on. Long-running hogs would instead
	// trigger the kongo anomaly and fool the hybrid probe.
	busy := workload.Profile{
		Name: "busy", Seed: 2,
		JobRate: 1.0 / 20, JobShape: 3, JobScale: 8, JobMax: 60,
	}
	conundrum := workload.Profile{
		Name: "conundrum", Seed: 3,
		Fixtures: []workload.Fixture{
			{At: 0, Spec: simos.ProcSpec{Name: "soak", Nice: 19, Demand: math.Inf(1), WallLimit: horizon + 1}},
		},
	}
	return []workload.Profile{idle, busy, conundrum}
}

func TestPolicyString(t *testing.T) {
	if PolicyForecast.String() != "forecast" ||
		PolicyLoadAvg.String() != "load_average" ||
		PolicyRandom.String() != "random" {
		t.Fatal("policy names wrong")
	}
	if Policy(42).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
}

func TestMakeTasks(t *testing.T) {
	tasks := MakeTasks(5, 30)
	if len(tasks) != 5 || tasks[4].ID != 4 || tasks[2].Demand != 30 {
		t.Fatalf("MakeTasks = %+v", tasks)
	}
}

func TestPlaceSpreadsAcrossIdleHosts(t *testing.T) {
	profiles := []workload.Profile{
		{Name: "a", Seed: 1}, {Name: "b", Seed: 2},
	}
	c := NewCluster(profiles, 5000)
	c.Warmup(300, 10)
	placements := c.Place(MakeTasks(4, 50), PolicyForecast, 1)
	counts := map[int]int{}
	for _, h := range placements {
		counts[h]++
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("placements = %v, want an even split", placements)
	}
}

func TestForecastPolicySeesThroughNice(t *testing.T) {
	horizon := 5000.0
	c := NewCluster(testProfiles(horizon), horizon)
	c.Warmup(600, 10)
	// The forecast (hybrid-sensor) policy should treat the conundrum host as
	// nearly idle; the load-average view cannot see past the soaker.
	fPred := c.predictions(PolicyForecast, nil)
	lPred := c.predictions(PolicyLoadAvg, nil)
	if fPred[2] < 0.8 {
		t.Fatalf("forecast availability of conundrum = %v, want ~1 (bias-corrected)", fPred[2])
	}
	if lPred[2] > 0.65 {
		t.Fatalf("load-average availability of conundrum = %v, want ~0.5 (fooled)", lPred[2])
	}
	if fPred[1] >= fPred[2] {
		t.Fatalf("forecast ranks busy host (%v) above conundrum (%v)", fPred[1], fPred[2])
	}
	// And the placement should use the conundrum host.
	fPlace := c.Place(MakeTasks(6, 30), PolicyForecast, 1)
	usedConundrum := 0
	for _, h := range fPlace {
		if h == 2 {
			usedConundrum++
		}
	}
	if usedConundrum == 0 {
		t.Fatalf("forecast policy never used the conundrum host: %v", fPlace)
	}
}

func TestExperimentForecastBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	tasks := MakeTasks(6, 30)
	var fSum, rSum float64
	for _, seed := range []int64{7, 8, 9} {
		f := Experiment(testProfiles(0), tasks, PolicyForecast, 600, seed)
		r := Experiment(testProfiles(0), tasks, PolicyRandom, 600, seed)
		if f.Makespan <= 0 || r.Makespan <= 0 {
			t.Fatalf("degenerate makespans: %v %v", f.Makespan, r.Makespan)
		}
		fSum += f.Makespan
		rSum += r.Makespan
	}
	if fSum > rSum*1.15 {
		t.Fatalf("mean forecast makespan %v worse than random %v", fSum/3, rSum/3)
	}
}

func TestExecuteValidation(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}}, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched placements accepted")
		}
	}()
	c.Execute(MakeTasks(2, 10), []int{0})
}

func TestExecuteCompletesAllTasks(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}, {Name: "b", Seed: 2}}, 10000)
	c.Warmup(60, 10)
	tasks := MakeTasks(4, 20)
	placements := c.Place(tasks, PolicyForecast, 3)
	makespan, mean := c.Execute(tasks, placements)
	if makespan <= 0 || mean <= 0 || mean > makespan {
		t.Fatalf("makespan %v mean %v", makespan, mean)
	}
	// Two idle hosts, 2 tasks each of 20 CPU-seconds: the pair on one host
	// shares, so makespan ~ 40s.
	if makespan < 30 || makespan > 60 {
		t.Fatalf("makespan = %v, want ~40", makespan)
	}
}
