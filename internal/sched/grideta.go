package sched

import (
	"errors"
	"math"
)

// This file combines CPU and network forecasts into wide-area scheduling
// estimates — the full AppLeS cost model: moving a task's input data to a
// host costs latency + bytes/bandwidth, and running it costs
// cpuSeconds/availability. The NWS serves all three forecasts (packages
// sensors and netsensor); this is where a grid scheduler puts them together.

// ResourceForecasts holds one host's predicted resources.
type ResourceForecasts struct {
	// Avail is the predicted CPU availability fraction in (0, 1].
	Avail float64
	// Bandwidth is the predicted transfer bandwidth to the host in
	// bytes/second.
	Bandwidth float64
	// Latency is the predicted one-way message latency to the host in
	// seconds.
	Latency float64
}

// ErrBadForecast reports non-positive resource forecasts.
var ErrBadForecast = errors.New("sched: resource forecasts must be positive")

// TransferComputeETA estimates the wall time to ship dataBytes to a host and
// run cpuSeconds of work there:
//
//	ETA = latency + dataBytes/bandwidth + cpuSeconds/avail
func TransferComputeETA(dataBytes, cpuSeconds float64, f ResourceForecasts) (float64, error) {
	if dataBytes < 0 || cpuSeconds < 0 {
		return 0, errors.New("sched: negative work")
	}
	if f.Avail <= 0 || f.Avail > 1 || f.Latency < 0 {
		return 0, ErrBadForecast
	}
	eta := f.Latency + cpuSeconds/f.Avail
	if dataBytes > 0 {
		if f.Bandwidth <= 0 {
			return 0, ErrBadForecast
		}
		eta += dataBytes / f.Bandwidth
	}
	return eta, nil
}

// DataTask is a task with an input-data transfer cost.
type DataTask struct {
	ID        int
	DataBytes float64
	Demand    float64 // CPU seconds
}

// PlaceDataTasks assigns each task to the host with the smallest predicted
// completion time, accounting for work already queued on the host (both its
// transfer and compute time serialize on the host in this model). It
// returns the placements and the per-host predicted finish times.
func PlaceDataTasks(tasks []DataTask, hosts []ResourceForecasts) (placements []int, finish []float64, err error) {
	if len(hosts) == 0 {
		return nil, nil, errors.New("sched: no hosts")
	}
	placements = make([]int, len(tasks))
	finish = make([]float64, len(hosts))
	for ti, task := range tasks {
		best := -1
		bestETA := math.Inf(1)
		for hi, f := range hosts {
			eta, err := TransferComputeETA(task.DataBytes, task.Demand, f)
			if err != nil {
				return nil, nil, err
			}
			if finish[hi]+eta < bestETA {
				best, bestETA = hi, finish[hi]+eta
			}
		}
		placements[ti] = best
		finish[best] = bestETA
	}
	return placements, finish, nil
}
