package sched

import (
	"fmt"

	"nwscpu/internal/simos"
)

// This file implements forecast-driven data-parallel partitioning, the
// AppLeS strategy of the applications that motivated the paper (Berman et
// al. [2]; Spring & Wolski's gene-sequence comparison [24]): a divisible
// job of W total CPU-seconds is split into one chunk per host, with chunk
// sizes proportional to each host's predicted availability, so that all
// chunks — running concurrently — finish at the same time. The paper's
// introduction is exactly about making this split well; its conclusion
// cites >100% gains from doing so with far cruder measurements.

// PartitionResult reports one partitioned execution.
type PartitionResult struct {
	Policy   Policy
	Chunks   []float64 // CPU-seconds assigned to each host
	Makespan float64   // wall time until the last chunk finished
	Finish   []float64 // per-host chunk completion times
}

// Partition splits total CPU-seconds across the cluster's hosts
// proportionally to the policy's availability estimates:
//
//	chunk_i = total * avail_i / sum(avail)
//
// Equal-share splitting falls out of PolicyRandom in expectation; for a
// deterministic equal split use PartitionEqual.
func (c *Cluster) Partition(total float64, p Policy, seed int64) []float64 {
	if total <= 0 {
		panic("sched: Partition total must be positive")
	}
	rng := newRngForPolicy(seed)
	avail := c.predictions(p, rng)
	var sum float64
	for _, a := range avail {
		sum += a
	}
	chunks := make([]float64, len(avail))
	for i, a := range avail {
		chunks[i] = total * a / sum
	}
	return chunks
}

// PartitionEqual splits total evenly across the hosts — the baseline an
// availability-blind scheduler would use.
func (c *Cluster) PartitionEqual(total float64) []float64 {
	if total <= 0 {
		panic("sched: PartitionEqual total must be positive")
	}
	n := len(c.hosts)
	chunks := make([]float64, n)
	for i := range chunks {
		chunks[i] = total / float64(n)
	}
	return chunks
}

// ExecutePartition spawns one chunk per host (skipping zero-size chunks)
// and runs all hosts until every chunk completes, returning the makespan
// and per-host finish times.
func (c *Cluster) ExecutePartition(chunks []float64) (makespan float64, finish []float64) {
	if len(chunks) != len(c.hosts) {
		panic("sched: chunk count must equal host count")
	}
	start := 0.0
	for _, h := range c.hosts {
		if h.Now() > start {
			start = h.Now()
		}
	}
	for _, h := range c.hosts {
		h.RunUntil(start)
	}
	pids := make([]simos.PID, len(chunks))
	for i, w := range chunks {
		if w <= 0 {
			continue
		}
		pids[i] = c.hosts[i].Spawn(simos.ProcSpec{
			Name:   fmt.Sprintf("chunk%d", i),
			Demand: w,
		})
	}
	finish = make([]float64, len(chunks))
	for i, w := range chunks {
		if w <= 0 {
			continue
		}
		h := c.hosts[i]
		for {
			if _, at, ok := h.Exit(pids[i]); ok {
				finish[i] = at - start
				break
			}
			h.RunUntil(h.Now() + 5)
		}
		if finish[i] > makespan {
			makespan = finish[i]
		}
	}
	return makespan, finish
}

// PartitionExperiment runs the full data-parallel pipeline: build the
// cluster, warm the sensors, split total CPU-seconds per the policy, and
// execute. Pass PolicyRandom for an effectively random split; use
// equal == true to force the equal-share baseline instead of a policy.
func (c *Cluster) PartitionExperiment(total float64, p Policy, equal bool, seed int64) PartitionResult {
	var chunks []float64
	if equal {
		chunks = c.PartitionEqual(total)
	} else {
		chunks = c.Partition(total, p, seed)
	}
	makespan, finish := c.ExecutePartition(chunks)
	return PartitionResult{Policy: p, Chunks: chunks, Makespan: makespan, Finish: finish}
}
