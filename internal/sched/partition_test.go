package sched

import (
	"math"
	"testing"

	"nwscpu/internal/workload"
)

func TestPartitionValidation(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}}, 1000)
	for _, f := range []func(){
		func() { c.Partition(0, PolicyForecast, 1) },
		func() { c.PartitionEqual(-1) },
		func() { c.ExecutePartition([]float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPartitionConservesWork(t *testing.T) {
	horizon := 10000.0
	c := NewCluster(testProfiles(horizon), horizon)
	c.Warmup(300, 10)
	chunks := c.Partition(300, PolicyForecast, 1)
	var sum float64
	for _, w := range chunks {
		if w < 0 {
			t.Fatalf("negative chunk: %v", chunks)
		}
		sum += w
	}
	if math.Abs(sum-300) > 1e-9 {
		t.Fatalf("chunks sum to %v, want 300", sum)
	}
}

func TestPartitionEqual(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}, {Name: "b", Seed: 2}}, 1000)
	chunks := c.PartitionEqual(100)
	if chunks[0] != 50 || chunks[1] != 50 {
		t.Fatalf("equal split = %v", chunks)
	}
}

func TestPartitionFavorsAvailableHosts(t *testing.T) {
	horizon := 10000.0
	c := NewCluster(testProfiles(horizon), horizon) // idle, busy, conundrum
	c.Warmup(600, 10)
	chunks := c.Partition(300, PolicyForecast, 1)
	if chunks[0] <= chunks[1] {
		t.Fatalf("idle host got %v <= busy host %v", chunks[0], chunks[1])
	}
	if chunks[2] <= chunks[1] {
		t.Fatalf("conundrum (really idle) got %v <= busy host %v", chunks[2], chunks[1])
	}
}

func TestExecutePartitionIdleCluster(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}, {Name: "b", Seed: 2}}, 10000)
	makespan, finish := c.ExecutePartition([]float64{60, 30})
	if math.Abs(finish[0]-60) > 1 || math.Abs(finish[1]-30) > 1 {
		t.Fatalf("finish = %v", finish)
	}
	if math.Abs(makespan-60) > 1 {
		t.Fatalf("makespan = %v", makespan)
	}
}

func TestExecutePartitionSkipsZeroChunks(t *testing.T) {
	c := NewCluster([]workload.Profile{{Name: "a", Seed: 1}, {Name: "b", Seed: 2}}, 10000)
	makespan, finish := c.ExecutePartition([]float64{40, 0})
	if finish[1] != 0 {
		t.Fatalf("zero chunk executed: %v", finish)
	}
	if makespan < 35 {
		t.Fatalf("makespan = %v", makespan)
	}
}

// The paper's headline application claim: forecast-proportional partitioning
// beats the equal split when host capacities differ.
func TestForecastPartitionBeatsEqualSplit(t *testing.T) {
	horizon := 20000.0
	run := func(equal bool) float64 {
		c := NewCluster(testProfiles(horizon), horizon)
		c.Warmup(600, 10)
		res := c.PartitionExperiment(600, PolicyForecast, equal, 1)
		return res.Makespan
	}
	forecastMakespan := run(false)
	equalMakespan := run(true)
	if forecastMakespan >= equalMakespan {
		t.Fatalf("forecast partition %v not better than equal %v",
			forecastMakespan, equalMakespan)
	}
	// The gain should be substantial on this skewed cluster (the paper
	// reports >100% gains on real applications; require at least 15% here —
	// the hybrid's optimism about the busy host caps the gain).
	if equalMakespan/forecastMakespan < 1.15 {
		t.Fatalf("gain only %.2fx (forecast %v, equal %v)",
			equalMakespan/forecastMakespan, forecastMakespan, equalMakespan)
	}
}
