package sched

import (
	"fmt"
	"math"
	"math/rand"

	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

// This file implements self-scheduling (dynamic work-queue) dispatch, the
// strategy of the AppLeS gene-sequence application the paper's authors built
// on these forecasts (Spring & Wolski, ICS 1998): instead of placing every
// task up front, each host is handed work only when it finishes its previous
// piece, and the forecasts choose which free host gets the next piece.
// Self-scheduling tolerates forecast error better than static placement
// because a mistake costs one task, not a whole queue.

// DynamicResult extends Result with dispatch telemetry.
type DynamicResult struct {
	Result
	Dispatches []int // Dispatches[i] = number of tasks host i executed
}

// RunDynamic executes tasks with self-scheduling under the given policy:
// whenever a host is free, the next queued task goes to the free host with
// the best current availability estimate (for PolicyRandom, effectively a
// random free host). The cluster's sensors keep measuring during execution,
// so later dispatch decisions see the load earlier tasks created.
//
// The simulation advances all hosts in lockstep at the given quantum in
// seconds (10 matches the paper's sensing cadence). It panics on a
// non-positive quantum.
func (c *Cluster) RunDynamic(tasks []Task, p Policy, seed int64, quantum float64) DynamicResult {
	if quantum <= 0 {
		panic("sched: RunDynamic quantum must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(c.hosts)

	// Align all hosts on a common instant.
	start := 0.0
	for _, h := range c.hosts {
		if h.Now() > start {
			start = h.Now()
		}
	}
	for _, h := range c.hosts {
		h.RunUntil(start)
	}

	res := DynamicResult{
		Result:     Result{Policy: p, Placements: make([]int, len(tasks))},
		Dispatches: make([]int, n),
	}
	const free = simos.PID(0)
	busy := make([]simos.PID, n) // PID of the running task; 0 = free
	next := 0
	done := 0
	var sumCompletion float64

	dispatch := func() {
		for next < len(tasks) {
			avail := c.predictions(p, rng)
			best := -1
			bestScore := math.Inf(-1)
			for hi := 0; hi < n; hi++ {
				if busy[hi] != free {
					continue
				}
				if avail[hi] > bestScore {
					best, bestScore = hi, avail[hi]
				}
			}
			if best == -1 {
				return // every host is busy
			}
			t := tasks[next]
			busy[best] = c.hosts[best].Spawn(simos.ProcSpec{
				Name:   fmt.Sprintf("task%d", t.ID),
				Demand: t.Demand,
			})
			res.Placements[next] = best
			res.Dispatches[best]++
			next++
		}
	}

	dispatch()
	for done < len(tasks) {
		// Advance one quantum everywhere, feeding the sensors.
		for i, h := range c.hosts {
			h.RunUntil(h.Now() + quantum)
			c.engines[i].Update(c.sensors[i].Measure())
		}
		// Reap completions and hand out more work.
		for hi := 0; hi < n; hi++ {
			if busy[hi] == free {
				continue
			}
			if _, at, ok := c.hosts[hi].Exit(busy[hi]); ok {
				completion := at - start
				sumCompletion += completion
				if completion > res.Makespan {
					res.Makespan = completion
				}
				busy[hi] = free
				done++
			}
		}
		dispatch()
	}
	if len(tasks) > 0 {
		res.MeanCompletion = sumCompletion / float64(len(tasks))
	}
	return res
}

// DynamicExperiment builds a cluster over the profiles, warms the sensors,
// and executes the tasks with self-scheduling under the given policy.
func DynamicExperiment(profiles []workload.Profile, tasks []Task, p Policy, warmup float64, seed int64) DynamicResult {
	var totalDemand float64
	for _, t := range tasks {
		totalDemand += t.Demand
	}
	horizon := warmup + 20*totalDemand
	c := NewCluster(profiles, horizon)
	c.Warmup(warmup, 10)
	return c.RunDynamic(tasks, p, seed, 10)
}
