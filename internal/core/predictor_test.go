package core

import (
	"math"
	"testing"

	"nwscpu/internal/forecast"
	"nwscpu/internal/sensors"
	"nwscpu/internal/simos"
)

func TestPredictorNotReady(t *testing.T) {
	sh, _ := simhost()
	p := NewPredictor(sh, PredictorConfig{})
	if _, err := p.Next(); err != ErrNotReady {
		t.Fatalf("Next before data: %v", err)
	}
	if _, err := p.NextInterval(); err != ErrNotReady {
		t.Fatalf("NextInterval before data: %v", err)
	}
	if _, err := p.NextWithBand(0.9); err != ErrNotReady {
		t.Fatalf("NextWithBand before data: %v", err)
	}
	if _, err := p.ExpectedRuntime(10); err != ErrNotReady {
		t.Fatalf("ExpectedRuntime before data: %v", err)
	}
}

func TestPredictorDefaultsApplied(t *testing.T) {
	sh, _ := simhost()
	p := NewPredictor(sh, PredictorConfig{})
	if p.m != AggregateBlocks {
		t.Fatalf("block size = %d", p.m)
	}
}

func TestPredictorStepAndForecast(t *testing.T) {
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 7200})
	p := NewPredictor(sh, PredictorConfig{AggregateBlocks: 6})
	for i := 0; i < 60; i++ {
		h.RunUntil(h.Now() + 10)
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	next, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	// A lone long-running spinner is the kongo scenario: the hybrid's probe
	// evicts it and the predictor reports high availability. What matters
	// here is plumbing, not sensor fidelity (covered in package sensors).
	if next.Value < 0.4 || next.Value > 1 {
		t.Fatalf("next-step prediction = %v, want high (kongo view)", next.Value)
	}
	iv, err := p.NextInterval()
	if err != nil {
		t.Fatal(err)
	}
	if iv.Value < 0.4 || iv.Value > 1 {
		t.Fatalf("interval prediction = %v", iv.Value)
	}
	if p.History().Len() != 60 {
		t.Fatalf("history = %d", p.History().Len())
	}
	if p.AggregatedHistory().Len() != 10 {
		t.Fatalf("aggregated history = %d, want 10 blocks of 6", p.AggregatedHistory().Len())
	}
}

func TestPredictorBand(t *testing.T) {
	sh, h := simhost()
	p := NewPredictor(sh, PredictorConfig{})
	for i := 0; i < 100; i++ {
		h.RunUntil(h.Now() + 10)
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	iv, err := p.NextWithBand(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.Prediction.Value || iv.Hi < iv.Prediction.Value {
		t.Fatalf("band %v..%v excludes forecast %v", iv.Lo, iv.Hi, iv.Prediction.Value)
	}
}

func TestPredictorExpectedRuntime(t *testing.T) {
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 7200})
	p := NewPredictor(sh, PredictorConfig{AggregateBlocks: 6})
	for i := 0; i < 30; i++ {
		h.RunUntil(h.Now() + 10)
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := p.ExpectedRuntime(60)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate is demand / predicted availability and the prediction is
	// in (0.4, 1], so the expansion lies in [60, 150).
	if rt < 60 || rt > 150 {
		t.Fatalf("ExpectedRuntime = %v, want in [60, 150)", rt)
	}
	if _, err := p.ExpectedRuntime(-1); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestPredictorCustomEngine(t *testing.T) {
	sh, h := simhost()
	p := NewPredictor(sh, PredictorConfig{
		NewEngine: func() *forecast.Engine {
			return forecast.NewEngine(forecast.ByMAE, forecast.NewLastValue())
		},
	})
	h.RunUntil(10)
	if _, err := p.Step(); err != nil {
		t.Fatal(err)
	}
	next, err := p.Next()
	if err != nil {
		t.Fatal(err)
	}
	if next.Method != "last_value" {
		t.Fatalf("custom engine ignored: method %q", next.Method)
	}
}

var _ = sensors.DefaultHybridConfig // keep import used if test set shrinks
