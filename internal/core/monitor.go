// Package core ties the substrates together into the system the paper
// evaluates: a Monitor that samples all three CPU-availability sensors at a
// fixed cadence on a host while periodically running ground-truth test
// processes, and the error analyses of Section 2 and 3 — measurement error
// (Equation 3), true forecasting error (Equation 4), and one-step-ahead
// prediction error (Equation 5) — for both raw 10-second series and
// 5-minute aggregated series.
package core

import (
	"fmt"
	"time"

	"nwscpu/internal/sensors"
	"nwscpu/internal/series"
)

// Sensor names used as series keys.
const (
	MethodLoadAvg = "load_average"
	MethodVmstat  = "vmstat"
	MethodHybrid  = "nws_hybrid"
)

// Methods lists the three measurement methods in the paper's column order.
var Methods = []string{MethodLoadAvg, MethodVmstat, MethodHybrid}

// MonitorConfig configures a monitoring run.
type MonitorConfig struct {
	// MeasurePeriod is the sensing cadence in seconds (10 in the paper).
	MeasurePeriod float64
	// TestPeriod is the interval between ground-truth test processes in
	// seconds; 0 disables test processes. The paper uses 600 (10 minutes)
	// for the 10-second tests and 3600 for the 5-minute tests.
	TestPeriod float64
	// TestLen is the test process wall duration in seconds (10 or 300).
	TestLen float64
	// Hybrid configures the NWS hybrid sensor.
	Hybrid sensors.HybridConfig
}

// ShortTermConfig is the paper's short-term setup: 10 s sensing, a 10 s test
// process every 10 minutes, 1.5 s probes once per minute.
func ShortTermConfig() MonitorConfig {
	return MonitorConfig{
		MeasurePeriod: 10,
		TestPeriod:    600,
		TestLen:       10,
		Hybrid:        sensors.DefaultHybridConfig(),
	}
}

// MediumTermConfig is the paper's medium-term setup: 10 s sensing and a
// 5-minute test process every 60 minutes (run sparsely to avoid driving
// away the contention being measured, as the paper notes).
func MediumTermConfig() MonitorConfig {
	return MonitorConfig{
		MeasurePeriod: 10,
		TestPeriod:    3600,
		TestLen:       300,
		Hybrid:        sensors.DefaultHybridConfig(),
	}
}

// Monitor drives the three sensors over a host and records every series.
type Monitor struct {
	host sensors.Host
	cfg  MonitorConfig

	la *sensors.LoadAvgSensor
	vm *sensors.VmstatSensor
	hy *sensors.HybridSensor

	// Measurements maps method name to its availability series.
	Measurements map[string]*series.Series
	// Tests records the ground-truth test-process observations; each point
	// is stamped with the test's start time.
	Tests *series.Series
}

// NewMonitor creates a Monitor over h. It panics on a non-positive
// MeasurePeriod or on TestPeriod set without TestLen.
func NewMonitor(h sensors.Host, cfg MonitorConfig) *Monitor {
	if cfg.MeasurePeriod <= 0 {
		panic("core: MeasurePeriod must be positive")
	}
	if cfg.TestPeriod > 0 && cfg.TestLen <= 0 {
		panic("core: TestPeriod set without TestLen")
	}
	if cfg.Hybrid.ProbeEvery == 0 {
		cfg.Hybrid = sensors.DefaultHybridConfig()
	}
	m := &Monitor{
		host:         h,
		cfg:          cfg,
		la:           sensors.NewLoadAvgSensor(h),
		vm:           sensors.NewVmstatSensor(h, 0),
		hy:           sensors.NewHybridSensor(h, cfg.Hybrid),
		Measurements: make(map[string]*series.Series, 3),
		Tests:        series.New("test_process", "fraction"),
	}
	for _, name := range Methods {
		m.Measurements[name] = series.New(name, "fraction")
	}
	return m
}

// MonitorFromSeries builds an analysis-only Monitor around previously
// recorded series (e.g. re-imported from exported CSV traces). The returned
// Monitor cannot Run — it has no host — but every error analysis accepts it.
func MonitorFromSeries(measurements map[string]*series.Series, tests *series.Series) *Monitor {
	m := &Monitor{
		Measurements: make(map[string]*series.Series, len(Methods)),
		Tests:        tests,
	}
	if m.Tests == nil {
		m.Tests = series.New("test_process", "fraction")
	}
	for _, name := range Methods {
		if s := measurements[name]; s != nil {
			m.Measurements[name] = s
		} else {
			m.Measurements[name] = series.New(name, "fraction")
		}
	}
	return m
}

// advanceTo moves the host clock to time t: a simulated host advances its
// virtual clock; a live host's clock is wall time, so the monitor sleeps
// until the epoch arrives (without this, Run would spin hot between live
// measurements).
func (m *Monitor) advanceTo(t float64) {
	if sh, ok := m.host.(sensors.SimHost); ok {
		sh.H.RunUntil(t)
		return
	}
	if wait := t - m.host.Now(); wait > 0 {
		time.Sleep(time.Duration(wait * float64(time.Second)))
	}
}

// Run monitors for the given duration (host-clock seconds), taking
// measurements at every MeasurePeriod boundary and running a test process
// every TestPeriod. The first test runs one TestPeriod in, so every test has
// measurement history before it.
func (m *Monitor) Run(duration float64) error {
	start := m.host.Now()
	end := start + duration
	nextTest := start + m.cfg.TestPeriod
	if m.cfg.TestPeriod <= 0 {
		nextTest = end + 1 // never
	}
	for epoch := start + m.cfg.MeasurePeriod; epoch <= end; {
		m.advanceTo(epoch)
		if err := m.measureAll(epoch); err != nil {
			return err
		}
		if m.host.Now() >= nextTest-m.cfg.MeasurePeriod/2 {
			testStart := m.host.Now()
			frac := sensors.RunTest(m.host, m.cfg.TestLen)
			if err := m.Tests.Append(testStart, frac); err != nil {
				return err
			}
			nextTest += m.cfg.TestPeriod
		}
		// Next epoch on the measurement grid strictly after Now (probes and
		// tests may have consumed several grid slots).
		now := m.host.Now()
		k := int((now-start)/m.cfg.MeasurePeriod) + 1
		epoch = start + float64(k)*m.cfg.MeasurePeriod
	}
	return nil
}

// measureAll samples the three sensors, recording all values at the epoch
// timestamp. The passive sensors are read first; the hybrid last, because
// its probe advances host time.
func (m *Monitor) measureAll(epoch float64) error {
	if err := m.Measurements[MethodLoadAvg].Append(epoch, m.la.Measure()); err != nil {
		return fmt.Errorf("core: load average series: %w", err)
	}
	if err := m.Measurements[MethodVmstat].Append(epoch, m.vm.Measure()); err != nil {
		return fmt.Errorf("core: vmstat series: %w", err)
	}
	if err := m.Measurements[MethodHybrid].Append(epoch, m.hy.Measure()); err != nil {
		return fmt.Errorf("core: hybrid series: %w", err)
	}
	return nil
}
