package core

import (
	"errors"
	"fmt"

	"nwscpu/internal/forecast"
	"nwscpu/internal/sensors"
	"nwscpu/internal/series"
)

// Predictor is the deployable face of the system: it owns a hybrid sensor
// on a host and two forecasting engines — one over the raw measurement
// series for short-term (next measurement) predictions, one over m-point
// block means for medium-term (interval average) predictions, mirroring the
// paper's 10-second and 5-minute horizons.
//
// Drive it by calling Step at the sensing cadence; on a simulated host,
// advance the simulation first.
type Predictor struct {
	host   sensors.Host
	sensor sensors.Sensor
	m      int

	raw       *forecast.Engine
	agg       *forecast.Engine
	blockSum  float64
	blockLen  int
	series    *series.Series
	aggSeries *series.Series
}

// PredictorConfig configures a Predictor.
type PredictorConfig struct {
	// Hybrid configures the underlying NWS hybrid sensor.
	Hybrid sensors.HybridConfig
	// AggregateBlocks is the medium-term block size in measurements
	// (default AggregateBlocks = 30, i.e. 5 minutes at 10-second cadence).
	AggregateBlocks int
	// NewEngine constructs the forecasting engines (default
	// forecast.NewDefaultEngine). Two independent engines are created.
	NewEngine func() *forecast.Engine
}

// NewPredictor builds a Predictor over h.
func NewPredictor(h sensors.Host, cfg PredictorConfig) *Predictor {
	if cfg.Hybrid.ProbeEvery == 0 {
		cfg.Hybrid = sensors.DefaultHybridConfig()
	}
	if cfg.AggregateBlocks <= 0 {
		cfg.AggregateBlocks = AggregateBlocks
	}
	if cfg.NewEngine == nil {
		cfg.NewEngine = forecast.NewDefaultEngine
	}
	return &Predictor{
		host:      h,
		sensor:    sensors.NewHybridSensor(h, cfg.Hybrid),
		m:         cfg.AggregateBlocks,
		raw:       cfg.NewEngine(),
		agg:       cfg.NewEngine(),
		series:    series.New("availability", "fraction"),
		aggSeries: series.New("availability_agg", "fraction"),
	}
}

// Step takes one measurement, feeds both engines, and returns the measured
// value.
func (p *Predictor) Step() (float64, error) {
	t := p.host.Now()
	v := p.sensor.Measure()
	if err := p.series.Append(t, v); err != nil {
		return 0, fmt.Errorf("core: predictor series: %w", err)
	}
	p.raw.Update(v)
	p.blockSum += v
	p.blockLen++
	if p.blockLen == p.m {
		avg := p.blockSum / float64(p.m)
		p.agg.Update(avg)
		if err := p.aggSeries.Append(t, avg); err != nil {
			return 0, fmt.Errorf("core: predictor aggregated series: %w", err)
		}
		p.blockSum, p.blockLen = 0, 0
	}
	return v, nil
}

// ErrNotReady is returned by predictions that lack sufficient history.
var ErrNotReady = errors.New("core: predictor has insufficient history")

// Next predicts the next measurement (the paper's short-term horizon).
func (p *Predictor) Next() (forecast.Prediction, error) {
	pred, ok := p.raw.Forecast()
	if !ok {
		return forecast.Prediction{}, ErrNotReady
	}
	return pred, nil
}

// NextInterval predicts the average availability over the next aggregation
// block (the paper's medium-term horizon: 5 minutes at default settings).
func (p *Predictor) NextInterval() (forecast.Prediction, error) {
	pred, ok := p.agg.Forecast()
	if !ok {
		return forecast.Prediction{}, ErrNotReady
	}
	return pred, nil
}

// NextWithBand predicts the next measurement with an empirical uncertainty
// interval of the given coverage.
func (p *Predictor) NextWithBand(coverage float64) (forecast.Interval, error) {
	iv, ok := p.raw.ForecastInterval(coverage)
	if !ok {
		return forecast.Interval{}, ErrNotReady
	}
	return iv, nil
}

// ExpectedRuntime converts a predicted availability into a wall-clock
// estimate for a task needing cpuSeconds of CPU — the expansion-factor use
// the paper's schedulers make of these forecasts. It uses the medium-term
// prediction when available, else the short-term one.
func (p *Predictor) ExpectedRuntime(cpuSeconds float64) (float64, error) {
	if cpuSeconds < 0 {
		return 0, errors.New("core: negative CPU demand")
	}
	pred, err := p.NextInterval()
	if err != nil {
		if pred, err = p.Next(); err != nil {
			return 0, err
		}
	}
	avail := pred.Value
	if avail < 0.01 {
		avail = 0.01
	}
	return cpuSeconds / avail, nil
}

// History returns the recorded measurement series (not a copy; do not
// modify).
func (p *Predictor) History() *series.Series { return p.series }

// AggregatedHistory returns the recorded block-mean series.
func (p *Predictor) AggregatedHistory() *series.Series { return p.aggSeries }
