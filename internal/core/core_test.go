package core

import (
	"math"
	"testing"
	"time"

	"nwscpu/internal/sensors"
	"nwscpu/internal/series"
	"nwscpu/internal/simos"
	"nwscpu/internal/workload"
)

func simhost() (sensors.SimHost, *simos.Host) {
	h := simos.New(simos.DefaultConfig())
	return sensors.SimHost{H: h}, h
}

func TestNewMonitorValidation(t *testing.T) {
	sh, _ := simhost()
	for i, cfg := range []MonitorConfig{
		{},
		{MeasurePeriod: 10, TestPeriod: 100}, // TestLen missing
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			NewMonitor(sh, cfg)
		}()
	}
	// Zero hybrid config must be defaulted, not rejected.
	m := NewMonitor(sh, MonitorConfig{MeasurePeriod: 10})
	if m.cfg.Hybrid.ProbeEvery != 6 {
		t.Fatalf("hybrid config not defaulted: %+v", m.cfg.Hybrid)
	}
}

func TestMonitorRecordsAllSeries(t *testing.T) {
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 4000})
	m := NewMonitor(sh, ShortTermConfig())
	if err := m.Run(1300); err != nil {
		t.Fatal(err)
	}
	for _, name := range Methods {
		s := m.Measurements[name]
		// ~130 epochs minus slots consumed by probes and tests.
		if s.Len() < 100 {
			t.Fatalf("%s series too short: %d", name, s.Len())
		}
		for _, p := range s.Points {
			if p.V < 0 || p.V > 1 {
				t.Fatalf("%s out-of-range value %v", name, p.V)
			}
		}
	}
	if m.Tests.Len() != 2 { // tests at ~600 and ~1200
		t.Fatalf("test count = %d, want 2", m.Tests.Len())
	}
}

func TestMonitorTestObservationsSane(t *testing.T) {
	sh, h := simhost()
	h.Spawn(simos.ProcSpec{Name: "bg", Demand: math.Inf(1), WallLimit: 4000})
	m := NewMonitor(sh, ShortTermConfig())
	if err := m.Run(1300); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Tests.Points {
		if p.V < 0.3 || p.V > 0.8 {
			t.Fatalf("test against one spinner = %v, want ~0.5-0.7", p.V)
		}
	}
}

func TestMeasurementErrorIdleHost(t *testing.T) {
	sh, _ := simhost()
	m := NewMonitor(sh, ShortTermConfig())
	if err := m.Run(1300); err != nil {
		t.Fatal(err)
	}
	for _, name := range Methods {
		e, err := MeasurementError(m.Measurements[name], m.Tests)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e > 0.02 {
			t.Fatalf("%s measurement error on idle host = %v, want ~0", name, e)
		}
	}
}

func TestMeasurementErrorConundrumShape(t *testing.T) {
	// Passive methods badly mismeasure a nice-19 soaker; the hybrid does not.
	sh, h := simhost()
	workload.Submit(h, workload.Conundrum(5000).Generate(5000))
	m := NewMonitor(sh, ShortTermConfig())
	if err := m.Run(4000); err != nil {
		t.Fatal(err)
	}
	la, err := MeasurementError(m.Measurements[MethodLoadAvg], m.Tests)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := MeasurementError(m.Measurements[MethodHybrid], m.Tests)
	if err != nil {
		t.Fatal(err)
	}
	if la < 0.2 {
		t.Fatalf("load-average error on conundrum = %v, want large", la)
	}
	if hy > la/2 {
		t.Fatalf("hybrid error %v not much smaller than load average %v", hy, la)
	}
}

func TestMeasurementErrorNoData(t *testing.T) {
	s := series.FromValues("m", 0, 10, []float64{1, 1})
	empty := series.New("t", "")
	if _, err := MeasurementError(s, empty); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	// Tests before any measurement also yield no data.
	early := series.New("t", "")
	if err := early.Append(-5, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasurementError(s, early); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestOneStepErrorSmooth(t *testing.T) {
	// A slowly varying series must have small one-step error.
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = 0.5 + 0.3*math.Sin(float64(i)/100)
	}
	s := series.FromValues("m", 0, 10, vals)
	e, err := OneStepError(s)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.01 {
		t.Fatalf("one-step error on smooth series = %v", e)
	}
}

func TestOneStepErrorEmpty(t *testing.T) {
	if _, err := OneStepError(series.New("x", "")); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestTrueForecastErrorPerfectWorld(t *testing.T) {
	// Measurements and tests agree exactly and the series is constant: the
	// true forecasting error must be ~0.
	meas := series.FromValues("m", 0, 10, constant(0.7, 100))
	tests := series.New("t", "")
	for _, tt := range []float64{300, 600, 900} {
		if err := tests.Append(tt, 0.7); err != nil {
			t.Fatal(err)
		}
	}
	e, err := TrueForecastError(meas, tests)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Fatalf("true forecast error = %v, want 0", e)
	}
}

func TestTrueForecastErrorSkipsUncovered(t *testing.T) {
	meas := series.FromValues("m", 100, 10, constant(0.5, 10))
	tests := series.New("t", "")
	if err := tests.Append(50, 0.5); err != nil { // before any measurement
		t.Fatal(err)
	}
	if _, err := TrueForecastError(meas, tests); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestAggregatedOneStepError(t *testing.T) {
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = 0.5 + 0.2*math.Sin(float64(i)/300)
	}
	s := series.FromValues("m", 0, 10, vals)
	e, err := AggregatedOneStepError(s, AggregateBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.05 {
		t.Fatalf("aggregated one-step error = %v", e)
	}
	if _, err := AggregatedOneStepError(series.FromValues("m", 0, 10, constant(1, 30)), 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := AggregatedOneStepError(series.FromValues("m", 0, 10, constant(1, 30)), 31); err != ErrNoData {
		t.Fatal("too-large m should yield ErrNoData")
	}
}

func TestAggregatedTrueForecastError(t *testing.T) {
	meas := series.FromValues("m", 0, 10, constant(0.6, 1000))
	tests := series.New("t", "")
	for _, tt := range []float64{3600, 7200} {
		if err := tests.Append(tt, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	e, err := AggregatedTrueForecastError(meas, tests, AggregateBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Fatalf("aggregated true forecast error = %v, want 0", e)
	}
}

func TestVarianceComparison(t *testing.T) {
	// i.i.d.-style wiggle: aggregation must reduce variance.
	vals := make([]float64, 3000)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = 0.4
		} else {
			vals[i] = 0.6
		}
	}
	s := series.FromValues("m", 0, 10, vals)
	orig, agg, err := VarianceComparison(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if agg >= orig {
		t.Fatalf("aggregated variance %v >= original %v", agg, orig)
	}
	if _, _, err := VarianceComparison(series.FromValues("m", 0, 1, constant(1, 3)), 30); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestMediumTermMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	sh, h := simhost()
	workload.Submit(h, workload.Gremlin().Generate(4*3600+100))
	m := NewMonitor(sh, MediumTermConfig())
	if err := m.Run(4 * 3600); err != nil {
		t.Fatal(err)
	}
	if m.Tests.Len() != 4 { // hourly 5-minute tests at 1h, 2h, 3h, 4h
		t.Fatalf("medium-term test count = %d, want 4", m.Tests.Len())
	}
	e, err := AggregatedTrueForecastError(m.Measurements[MethodLoadAvg], m.Tests, AggregateBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.3 {
		t.Fatalf("aggregated true forecast error on gremlin = %v, implausibly large", e)
	}
}

func constant(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// wallHost is a minimal live-style Host whose clock is wall time; it lets
// the test verify that Monitor.Run paces itself with sleeps rather than
// spinning.
type wallHost struct {
	start time.Time
	spins int
}

func (w *wallHost) Now() float64     { return time.Since(w.start).Seconds() }
func (w *wallHost) LoadAvg() float64 { return 0.5 }
func (w *wallHost) CPUTimes() sensors.CPUTimes {
	t := w.Now()
	return sensors.CPUTimes{User: t / 2, Idle: t / 2, Total: t}
}
func (w *wallHost) RunQueue() int { return 1 }
func (w *wallHost) NumCPUs() int  { return 1 }
func (w *wallHost) RunSpin(wall float64) float64 {
	w.spins++
	time.Sleep(time.Duration(wall * float64(time.Second)))
	return 0.5
}

func TestMonitorPacesLiveHost(t *testing.T) {
	h := &wallHost{start: time.Now()}
	m := NewMonitor(h, MonitorConfig{
		MeasurePeriod: 0.05,
		Hybrid:        sensors.HybridConfig{ProbeEvery: 100, ProbeLen: 0.01},
	})
	start := time.Now()
	if err := m.Run(0.3); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 250*time.Millisecond {
		t.Fatalf("live run finished in %v: the monitor did not pace itself", elapsed)
	}
	n := m.Measurements[MethodLoadAvg].Len()
	// ~6 epochs at 50 ms over 300 ms; allow scheduling slop.
	if n < 3 || n > 8 {
		t.Fatalf("measurements = %d, want ~6 (no spinning)", n)
	}
}
