package core

import (
	"errors"
	"math"

	"nwscpu/internal/forecast"
	"nwscpu/internal/series"
)

// ErrNoData is returned by analyses with no usable observations.
var ErrNoData = errors.New("core: no usable observations")

// MeasurementError computes Equation 3: the mean absolute difference between
// each test-process observation and the measurement taken most immediately
// before (or in the same sensing epoch as) the test. Values are fractions in
// [0, 1]; multiply by 100 for the paper's percentages.
func MeasurementError(meas, tests *series.Series) (float64, error) {
	var sum float64
	n := 0
	for _, tp := range tests.Points {
		mp, ok := meas.LatestAtOrBefore(tp.T)
		if !ok {
			continue
		}
		sum += math.Abs(mp.V - tp.V)
		n++
	}
	if n == 0 {
		return 0, ErrNoData
	}
	return sum / float64(n), nil
}

// MeasurementResiduals returns the signed per-test residuals
// (measurement - test observation) behind Equation 3, for distributional
// analysis of the errors.
func MeasurementResiduals(meas, tests *series.Series) ([]float64, error) {
	var out []float64
	for _, tp := range tests.Points {
		mp, ok := meas.LatestAtOrBefore(tp.T)
		if !ok {
			continue
		}
		out = append(out, mp.V-tp.V)
	}
	if len(out) == 0 {
		return nil, ErrNoData
	}
	return out, nil
}

// ForecastResiduals returns the signed per-test residuals
// (forecast - test observation) behind Equation 4.
func ForecastResiduals(meas, tests *series.Series) ([]float64, error) {
	eng := forecast.NewDefaultEngine()
	i := 0
	var out []float64
	for _, tp := range tests.Points {
		for i < meas.Len() && meas.At(i).T <= tp.T {
			eng.Update(meas.At(i).V)
			i++
		}
		pred, ok := eng.Forecast()
		if !ok {
			continue
		}
		out = append(out, pred.Value-tp.V)
	}
	if len(out) == 0 {
		return nil, ErrNoData
	}
	return out, nil
}

// OneStepError computes Equation 5 for the NWS forecasting engine over a
// measurement series: the mean absolute difference between each measurement
// and the forecast issued for it one step earlier.
func OneStepError(meas *series.Series) (float64, error) {
	res, _, err := forecast.EvaluateEngine(forecast.NewDefaultEngine, meas.Values())
	if err != nil {
		return 0, err
	}
	if res.N == 0 {
		return 0, ErrNoData
	}
	return res.MAE, nil
}

// TrueForecastError computes Equation 4: the mean absolute difference
// between each test-process observation and the NWS forecast generated from
// all measurements up to (and including) the sensing epoch immediately
// before the test ran.
func TrueForecastError(meas, tests *series.Series) (float64, error) {
	eng := forecast.NewDefaultEngine()
	i := 0 // next measurement to feed
	var sum float64
	n := 0
	for _, tp := range tests.Points {
		for i < meas.Len() && meas.At(i).T <= tp.T {
			eng.Update(meas.At(i).V)
			i++
		}
		pred, ok := eng.Forecast()
		if !ok {
			continue
		}
		sum += math.Abs(pred.Value - tp.V)
		n++
	}
	if n == 0 {
		return 0, ErrNoData
	}
	return sum / float64(n), nil
}

// AggregateBlocks is the number of 10-second measurements per 5-minute
// block used throughout the medium-term analyses.
const AggregateBlocks = 30

// AggregatedOneStepError computes Equation 5 over the m-point aggregated
// series X^(m) (Table 5 uses m = 30, i.e. 5-minute averages of 10-second
// measurements).
func AggregatedOneStepError(meas *series.Series, m int) (float64, error) {
	agg, err := meas.AggregateCount(m)
	if err != nil {
		return 0, err
	}
	if agg.Len() < 2 {
		return 0, ErrNoData
	}
	return OneStepError(agg)
}

// AggregatedTrueForecastError computes the medium-term Equation 4 of
// Table 6: the NWS engine forecasts the next m-point block average, and each
// forecast is compared with the observation of a test process that runs for
// the block length. Tests must have been produced by a MediumTermConfig run
// (5-minute test processes).
func AggregatedTrueForecastError(meas, tests *series.Series, m int) (float64, error) {
	agg, err := meas.AggregateCount(m)
	if err != nil {
		return 0, err
	}
	return TrueForecastError(agg, tests)
}

// VarianceComparison reports the variance of a measurement series and of its
// m-point aggregated version (Table 4's "orig." and "300s" columns).
func VarianceComparison(meas *series.Series, m int) (orig, aggregated float64, err error) {
	agg, err := meas.AggregateCount(m)
	if err != nil {
		return 0, 0, err
	}
	if meas.Len() < 2 || agg.Len() < 2 {
		return 0, 0, ErrNoData
	}
	return varOf(meas.Values()), varOf(agg.Values()), nil
}

func varOf(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(n-1)
}
