package workload

import (
	"math"
	"testing"

	"nwscpu/internal/series"
	"nwscpu/internal/simos"
)

func TestFromUtilizationTraceValidation(t *testing.T) {
	short := series.FromValues("u", 0, 10, []float64{0.5})
	if _, err := FromUtilizationTrace(short); err == nil {
		t.Fatal("single-point trace accepted")
	}
	dup := series.New("u", "")
	if err := dup.Append(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := dup.Append(0, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := FromUtilizationTrace(dup); err == nil {
		t.Fatal("duplicate timestamps accepted")
	}
}

func TestFromUtilizationTraceSkipsIdleAndClamps(t *testing.T) {
	trace := series.FromValues("u", 0, 10, []float64{0, 2.0, math.NaN(), 0.5, 0.5})
	as, err := FromUtilizationTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	// Intervals: [0,10) u=0 skipped; [10,20) u=2 clamped to 1; [20,30) NaN
	// skipped; [30,40) u=0.5.
	if len(as) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(as))
	}
	if as[0].Spec.Demand != 10 { // clamped to full interval
		t.Fatalf("clamped demand = %v, want 10", as[0].Spec.Demand)
	}
	if as[1].Spec.Demand != 5 {
		t.Fatalf("demand = %v, want 5", as[1].Spec.Demand)
	}
}

func TestReplayReproducesLoadShape(t *testing.T) {
	// Target: 20% busy for 1000s, then 80% busy for 1000s.
	trace := series.New("u", "")
	for tt := 0.0; tt <= 2000; tt += 10 {
		u := 0.2
		if tt >= 1000 {
			u = 0.8
		}
		if err := trace.Append(tt, u); err != nil {
			t.Fatal(err)
		}
	}
	as, err := FromUtilizationTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	h := simos.New(simos.DefaultConfig())
	Submit(h, as)

	h.RunUntil(1000)
	c1 := h.Counters()
	busy1 := (c1.User + c1.Nice + c1.Sys) / c1.Total
	h.RunUntil(2000)
	c2 := h.Counters()
	busy2 := (c2.User + c2.Nice + c2.Sys - c1.User - c1.Nice - c1.Sys) / (c2.Total - c1.Total)

	if math.Abs(busy1-0.2) > 0.03 {
		t.Fatalf("phase 1 busy = %v, want 0.2", busy1)
	}
	if math.Abs(busy2-0.8) > 0.03 {
		t.Fatalf("phase 2 busy = %v, want 0.8", busy2)
	}
}

func TestFromAvailabilityTrace(t *testing.T) {
	trace := series.FromValues("avail", 0, 10, []float64{0.9, 0.9, 0.9})
	as, err := FromAvailabilityTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 {
		t.Fatalf("arrivals = %d", len(as))
	}
	if math.Abs(as[0].Spec.Demand-1.0) > 1e-9 { // (1-0.9)*10
		t.Fatalf("demand = %v, want 1", as[0].Spec.Demand)
	}
}

func TestReplayRoundTripThroughSensor(t *testing.T) {
	// Export a simulated trace, replay it, and check the replayed host's
	// mean availability matches the original's.
	src := simos.New(simos.DefaultConfig())
	Submit(src, Thing1().Generate(3000))
	orig := series.New("avail", "")
	for tt := 10.0; tt <= 3000; tt += 10 {
		src.RunUntil(tt)
		if err := orig.Append(tt, 1/(src.LoadAvg()+1)); err != nil {
			t.Fatal(err)
		}
	}
	as, err := FromAvailabilityTrace(orig)
	if err != nil {
		t.Fatal(err)
	}
	replay := simos.New(simos.DefaultConfig())
	replay.SubmitAll(arrivalTimes(as), arrivalSpecs(as))
	var sum float64
	n := 0
	for tt := 10.0; tt <= 3000; tt += 10 {
		replay.RunUntil(tt)
		sum += 1 / (replay.LoadAvg() + 1)
		n++
	}
	var origSum float64
	for _, p := range orig.Points {
		origSum += p.V
	}
	meanOrig := origSum / float64(orig.Len())
	meanReplay := sum / float64(n)
	if math.Abs(meanOrig-meanReplay) > 0.1 {
		t.Fatalf("replayed mean availability %v vs original %v", meanReplay, meanOrig)
	}
}

func arrivalTimes(as []Arrival) []float64 {
	out := make([]float64, len(as))
	for i, a := range as {
		out[i] = a.T
	}
	return out
}

func arrivalSpecs(as []Arrival) []simos.ProcSpec {
	out := make([]simos.ProcSpec, len(as))
	for i, a := range as {
		out[i] = a.Spec
	}
	return out
}
