package workload

import (
	"errors"
	"math"

	"nwscpu/internal/series"
	"nwscpu/internal/simos"
)

// FromUtilizationTrace converts a recorded utilization trace (busy fraction
// in [0, 1] over time) into an arrival stream that reproduces its load shape
// on the simulator: each inter-sample interval receives one job whose CPU
// demand equals the interval's target busy time, bounded by the interval
// (WallLimit) so backlogs cannot smear a burst into later intervals.
//
// This inverts the measurement direction: where the rest of the package
// generates load and measures availability, replay takes an availability-
// or utilization-shaped series (e.g. a CSV exported from a live host via
// cmd/nwstrace) and drives the simulator with it, so forecasters can be
// stress-tested against real-world load shapes inside the deterministic
// testbed.
//
// The trace must have at least two points with strictly increasing times;
// values are clamped to [0, 1].
func FromUtilizationTrace(trace *series.Series) ([]Arrival, error) {
	if trace.Len() < 2 {
		return nil, errors.New("workload: utilization trace needs at least two points")
	}
	var out []Arrival
	for i := 1; i < trace.Len(); i++ {
		prev, cur := trace.At(i-1), trace.At(i)
		dt := cur.T - prev.T
		if dt <= 0 {
			return nil, errors.New("workload: utilization trace times must strictly increase")
		}
		u := prev.V
		if math.IsNaN(u) || u <= 0 {
			continue
		}
		if u > 1 {
			u = 1
		}
		// Spread the interval's demand across the interval as a duty-cycled
		// burst process rather than one front-loaded run: a compact burst at
		// the interval start aliases against the kernel's 5-second load
		// sampling and disappears from the load average entirely.
		spec := simos.ProcSpec{
			Name:      "replay",
			Demand:    u * dt,
			WallLimit: dt,
		}
		if u < 1 {
			const burst = 0.25 // seconds of CPU per duty cycle
			spec.BurstCPU = burst
			spec.BurstSleep = burst * (1/u - 1)
		}
		out = append(out, Arrival{T: prev.T, Spec: spec})
	}
	return out, nil
}

// FromAvailabilityTrace is FromUtilizationTrace for availability-shaped
// input: the load replayed is 1 - availability.
func FromAvailabilityTrace(trace *series.Series) ([]Arrival, error) {
	inv := series.New(trace.Name+"/inverted", trace.Unit)
	for _, p := range trace.Points {
		v := 1 - p.V
		if err := inv.Append(p.T, v); err != nil {
			return nil, err
		}
	}
	return FromUtilizationTrace(inv)
}
