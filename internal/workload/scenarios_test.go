package workload

import (
	"math"
	"testing"
)

func baseProfile() Profile {
	return Profile{
		Name: "base", Seed: 42,
		JobRate: 0.05, JobShape: 1.6, JobScale: 1, JobMax: 300,
		SessionRate: 0.02, SessionMeanBurst: 0.5, SessionMeanThink: 5, SessionMeanLen: 600,
		DailyCycle: true, DailyAmp: 0.5,
	}
}

// countIn tallies arrivals inside [lo, hi).
func countIn(as []Arrival, lo, hi float64) int {
	n := 0
	for _, a := range as {
		if a.T >= lo && a.T < hi {
			n++
		}
	}
	return n
}

// TestScenarioFieldsDefaultToLegacyStream pins that the new scenario knobs
// at their zero values reproduce the pre-extension arrival stream exactly,
// point for point — the thinning envelope and every RNG draw must be
// untouched.
func TestScenarioFieldsDefaultToLegacyStream(t *testing.T) {
	p := baseProfile()
	want := p.Generate(2 * day)
	// Regenerate with the scenario fields explicitly zeroed (they already
	// are; this documents the claim) and with a disabled flash window.
	q := baseProfile()
	q.FlashMult = 3 // FlashLen == 0 keeps it off
	q.StormDuty = 0.5
	q.ChaosStep = 60 // ChaosAmp == 0 keeps it off
	got := q.Generate(2 * day)
	if len(got) != len(want) {
		t.Fatalf("stream length changed: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T || got[i].Spec.Demand != want[i].Spec.Demand {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestFlashCrowdRaisesRateInWindow checks the flash window multiplies the
// arrival rate inside [FlashStart, FlashStart+FlashLen) and nowhere else.
func TestFlashCrowdRaisesRateInWindow(t *testing.T) {
	p := baseProfile()
	p.DailyCycle = false
	p.DailyAmp = 0
	p.JobRate, p.SessionRate = 0.1, 0
	p.FlashStart, p.FlashLen, p.FlashMult = 20000, 10000, 6
	as := p.Generate(60000)
	in := countIn(as, 20000, 30000)
	out := countIn(as, 40000, 50000)
	if in < 3*out {
		t.Fatalf("flash window not hot: %d in-window vs %d out-of-window arrivals", in, out)
	}
}

// TestStormAlternates checks the ON/OFF square wave concentrates arrivals
// in the ON phase of each period.
func TestStormAlternates(t *testing.T) {
	p := baseProfile()
	p.DailyCycle = false
	p.DailyAmp = 0
	p.JobRate, p.SessionRate = 0.1, 0
	p.StormPeriod, p.StormDuty, p.StormMult = 10000, 0.3, 8
	as := p.Generate(100000)
	on, off := 0, 0
	for _, a := range as {
		if math.Mod(a.T, 10000) < 3000 {
			on++
		} else {
			off++
		}
	}
	// ON carries 0.3*8 = 2.4 rate-seconds per period vs 0.7 OFF.
	if on < 2*off {
		t.Fatalf("storm not concentrated: %d ON vs %d OFF arrivals", on, off)
	}
}

// TestChaosModulatesDeterministically checks the chaotic modulation is
// reproducible per seed, differs across seeds, and keeps the stream inside
// the thinning envelope (no panic, arrivals still sorted and bounded).
func TestChaosModulatesDeterministically(t *testing.T) {
	p := baseProfile()
	p.JobRate, p.SessionRate = 0.1, 0
	p.ChaosAmp, p.ChaosStep = 0.9, 120
	a1 := p.Generate(50000)
	a2 := p.Generate(50000)
	if len(a1) != len(a2) {
		t.Fatalf("same seed lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].T != a2[i].T {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	for i := 1; i < len(a1); i++ {
		if a1[i].T < a1[i-1].T {
			t.Fatalf("unsorted at %d", i)
		}
	}
	p.Seed = 43
	a3 := p.Generate(50000)
	if len(a3) == len(a1) {
		same := true
		for i := range a1 {
			if a1[i].T != a3[i].T {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical chaotic streams")
		}
	}
}
