package workload

import (
	"math"
	"math/rand"
	"testing"

	"nwscpu/internal/forecast"
	"nwscpu/internal/simos"
	"nwscpu/internal/stats"
)

func TestParetoRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := Pareto(rng, 1.6, 10)
		if v < 10 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// alpha=3 has a finite mean alpha*xm/(alpha-1) = 1.5*xm.
	rng := rand.New(rand.NewSource(2))
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += Pareto(rng, 3, 2)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Pareto mean = %v, want 3", mean)
	}
}

func TestParetoPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []func(){
		func() { Pareto(rng, 0, 1) },
		func() { Pareto(rng, 1, 0) },
		func() { BoundedPareto(rng, 0, 1, 2) },
		func() { BoundedPareto(rng, 1, 2, 2) },
		func() { Exp(rng, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBoundedParetoRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		v := BoundedPareto(rng, 1.6, 5, 100)
		if v < 5-1e-9 || v > 100+1e-9 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	// With alpha = 1.6, P(X > 10*xm) = (1/10)^1.6 ~ 2.5% before bounding;
	// check the tail is populated but not dominant.
	rng := rand.New(rand.NewSource(5))
	n, tail := 100000, 0
	for i := 0; i < n; i++ {
		if BoundedPareto(rng, 1.6, 5, 5000) > 50 {
			tail++
		}
	}
	frac := float64(tail) / float64(n)
	if frac < 0.01 || frac > 0.05 {
		t.Fatalf("tail fraction = %v, want ~0.025", frac)
	}
}

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += Exp(rng, 7)
	}
	if got := sum / float64(n); math.Abs(got-7) > 0.1 {
		t.Fatalf("Exp mean = %v, want 7", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Thing1()
	a1 := p.Generate(3600)
	a2 := p.Generate(3600)
	if len(a1) != len(a2) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].T != a2[i].T || a1[i].Spec.Demand != a2[i].Spec.Demand {
			t.Fatalf("non-deterministic arrival %d", i)
		}
	}
}

func TestGenerateSortedAndBounded(t *testing.T) {
	for _, p := range Profiles(7200) {
		as := p.Generate(7200)
		for i := range as {
			if i > 0 && as[i].T < as[i-1].T {
				t.Fatalf("%s: arrivals unsorted at %d", p.Name, i)
			}
			if as[i].T >= 7200 {
				t.Fatalf("%s: arrival beyond duration: %v", p.Name, as[i].T)
			}
		}
	}
}

func TestGeneratePanicsOnBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero duration accepted")
		}
	}()
	Thing1().Generate(0)
}

func TestDailyCycleModulatesRate(t *testing.T) {
	p := Thing2()
	p.SessionRate = 0 // jobs only, cleaner counting
	as := p.Generate(2 * day)
	// Compare arrivals in the 4-hour window around the peak (16:00) with
	// the window around the trough (04:00), summed over both days.
	peak, trough := 0, 0
	for _, a := range as {
		tod := math.Mod(a.T, day)
		switch {
		case tod >= 14*3600 && tod < 18*3600:
			peak++
		case tod >= 2*3600 && tod < 6*3600:
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("daily cycle absent: peak %d, trough %d", peak, trough)
	}
}

func TestFixturesIncluded(t *testing.T) {
	p := Conundrum(3600)
	as := p.Generate(3600)
	found := false
	for _, a := range as {
		if a.Spec.Name == "soaker" {
			if a.T != 0 || a.Spec.Nice != 19 {
				t.Fatalf("soaker fixture wrong: %+v", a)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("conundrum fixture missing")
	}
	// A fixture beyond the duration must be dropped.
	p.Fixtures = append(p.Fixtures, Fixture{At: 7200, Spec: simos.ProcSpec{Name: "late", Demand: 1}})
	for _, a := range p.Generate(3600) {
		if a.Spec.Name == "late" {
			t.Fatal("out-of-duration fixture not dropped")
		}
	}
}

func TestSubmitDrivesHost(t *testing.T) {
	h := simos.New(simos.DefaultConfig())
	p := Gremlin()
	Submit(h, p.Generate(1800))
	h.RunUntil(1800)
	c := h.Counters()
	busy := c.User + c.Nice + c.Sys
	if busy <= 0 {
		t.Fatal("workload generated no CPU usage")
	}
	if busy >= c.Total {
		t.Fatalf("gremlin should be lightly loaded: busy %v of %v", busy, c.Total)
	}
}

func TestProfileUtilizationOrdering(t *testing.T) {
	// thing2 must be busier than thing1, which must be busier than gremlin.
	util := func(p Profile) float64 {
		h := simos.New(simos.DefaultConfig())
		Submit(h, p.Generate(4*3600))
		h.RunUntil(4 * 3600)
		c := h.Counters()
		return (c.User + c.Nice + c.Sys) / c.Total
	}
	u1, u2, ug := util(Thing1()), util(Thing2()), util(Gremlin())
	if !(u2 > u1 && u1 > ug) {
		t.Fatalf("utilization ordering violated: thing2=%v thing1=%v gremlin=%v", u2, u1, ug)
	}
}

func TestHeavyTailedLoadIsLongRangeDependent(t *testing.T) {
	// The availability series of a heavy-tailed-load host should show high
	// Hurst; this is the generative premise behind Figure 3 / Table 4.
	if testing.Short() {
		t.Skip("long simulation")
	}
	h := simos.New(simos.DefaultConfig())
	p := Thing2()
	Submit(h, p.Generate(12*3600))
	var vals []float64
	for tt := 10.0; tt <= 12*3600; tt += 10 {
		h.RunUntil(tt)
		vals = append(vals, 1/(h.LoadAvg()+1))
	}
	hurst, _, err := stats.HurstRS(vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	if hurst < 0.55 || hurst > 1.05 {
		t.Fatalf("Hurst of availability series = %v, want > 0.55 (LRD)", hurst)
	}
}

func TestProfilesOrder(t *testing.T) {
	ps := Profiles(100)
	want := []string{"thing2", "thing1", "conundrum", "beowulf", "gremlin", "kongo"}
	if len(ps) != len(want) {
		t.Fatalf("got %d profiles", len(ps))
	}
	for i, w := range want {
		if ps[i].Name != w {
			t.Fatalf("profile %d = %s, want %s", i, ps[i].Name, w)
		}
	}
}

func TestFlashCrowdRegimeChange(t *testing.T) {
	duration := 4000.0
	p := FlashCrowd(duration)
	h := simos.New(simos.DefaultConfig())
	Submit(h, p.Generate(duration))
	var before, during, after float64
	for tt := 10.0; tt <= duration; tt += 10 {
		h.RunUntil(tt)
		avail := 1 / (h.LoadAvg() + 1)
		switch {
		case tt < duration*0.35:
			before = avail
		case tt > duration*0.45 && tt < duration*0.55:
			during = avail
		case tt > duration*0.8:
			after = avail
		}
	}
	if before < 0.8 || after < 0.8 {
		t.Fatalf("quiet phases not quiet: before %v after %v", before, after)
	}
	if during > 0.4 {
		t.Fatalf("crowd phase availability %v, want low", during)
	}
}

func TestForecasterAdaptsToFlashCrowd(t *testing.T) {
	// Measure how many steps the engine needs after the regime change to
	// get its forecast within 0.15 of the new level — the adaptation lag.
	duration := 4000.0
	p := FlashCrowd(duration)
	h := simos.New(simos.DefaultConfig())
	Submit(h, p.Generate(duration))
	eng := forecast.NewDefaultEngine()
	crowdStart := duration * 0.4
	lag := -1
	steps := 0
	for tt := 10.0; tt <= duration*0.6; tt += 10 {
		h.RunUntil(tt)
		v := 1 / (h.LoadAvg() + 1)
		if tt > crowdStart+60 { // load average itself needs ~1 min to see it
			steps++
			if pred, ok := eng.Forecast(); ok && lag < 0 && pred.Value-v < 0.15 {
				lag = steps
			}
		}
		eng.Update(v)
	}
	if lag < 0 {
		t.Fatal("engine never adapted to the flash crowd")
	}
	if lag > 30 { // 5 minutes of 10s steps
		t.Fatalf("adaptation lag = %d steps, want <= 30", lag)
	}
}
