package workload

import (
	"math"

	"nwscpu/internal/simos"
)

// The six UCSD host profiles of the paper. The load levels are chosen so
// that the simulated hosts land in the paper's qualitative regimes:
//
//	thing1, thing2  interactive research workstations; thing2 is the busier
//	conundrum       nearly idle except for a nice-19 background spinner
//	beowulf         moderately loaded departmental server
//	gremlin         lightly loaded departmental server
//	kongo           server occupied by one long-running full-priority job
//
// All profiles share the heavy-tailed job-demand shape alpha = 1.6, which
// targets Hurst ~ 0.7 in the availability series.

const jobShape = 1.6

// Thing1 is a moderately used interactive workstation: its load comes from
// heavy-tailed interactive sessions (editors, short simulations) plus a
// stream of short batch jobs.
func Thing1() Profile {
	return Profile{
		Name: "thing1", Seed: 101,
		JobRate: 1.0 / 300, JobShape: jobShape, JobScale: 10, JobMax: 150,
		JobBurstCPU: 0.25, JobBurstSleep: 0.1,
		SessionRate: 1.0 / 280, SessionMeanBurst: 0.12, SessionMeanThink: 0.85,
		SessionLenShape: 1.4, SessionLenScale: 100, SessionLenMax: 20000,
		DailyCycle: true, DailyAmp: 0.6,
	}
}

// Thing2 is the busier interactive workstation.
func Thing2() Profile {
	return Profile{
		Name: "thing2", Seed: 202,
		JobRate: 1.0 / 200, JobShape: jobShape, JobScale: 12, JobMax: 150,
		JobBurstCPU: 0.25, JobBurstSleep: 0.1,
		SessionRate: 1.0 / 170, SessionMeanBurst: 0.15, SessionMeanThink: 0.6,
		SessionLenShape: 1.4, SessionLenScale: 140, SessionLenMax: 25000,
		DailyCycle: true, DailyAmp: 0.6,
	}
}

// Conundrum is a workstation with a nice-19 background soaker and almost no
// other use. Load average and vmstat see a busy machine; a full-priority
// process sees a nearly idle one.
func Conundrum(duration float64) Profile {
	return Profile{
		Name: "conundrum", Seed: 303,
		JobRate: 1.0 / 700, JobShape: jobShape, JobScale: 6, JobMax: 200,
		DailyCycle: true, DailyAmp: 0.5,
		Fixtures: []Fixture{{
			At: 0,
			Spec: simos.ProcSpec{
				Name: "soaker", Nice: 19,
				Demand: math.Inf(1), WallLimit: duration + 1,
			},
		}},
	}
}

// Beowulf is a moderately loaded departmental compute server.
func Beowulf() Profile {
	return Profile{
		Name: "beowulf", Seed: 404,
		JobRate: 1.0 / 140, JobShape: jobShape, JobScale: 15, JobMax: 700,
		JobSysFrac: 0.08, JobBurstCPU: 0.3, JobBurstSleep: 0.1,
		DailyCycle: true, DailyAmp: 0.5,
	}
}

// Gremlin is a lightly loaded departmental server.
func Gremlin() Profile {
	return Profile{
		Name: "gremlin", Seed: 505,
		JobRate: 1.0 / 420, JobShape: jobShape, JobScale: 8, JobMax: 600,
		JobSysFrac: 0.05, JobBurstCPU: 0.3, JobBurstSleep: 0.1,
		DailyCycle: true, DailyAmp: 0.5,
	}
}

// Kongo is a server running one long-lived full-priority computation for the
// whole experimental period, plus a trickle of other jobs. Short probes
// evict the long runner (its priority has decayed) and wrongly see an idle
// machine.
func Kongo(duration float64) Profile {
	return Profile{
		Name: "kongo", Seed: 606,
		JobRate: 1.0 / 3600, JobShape: jobShape, JobScale: 4, JobMax: 300,
		DailyCycle: true, DailyAmp: 0.5,
		Fixtures: []Fixture{{
			At: 0,
			Spec: simos.ProcSpec{
				Name:   "longrunner",
				Demand: math.Inf(1), WallLimit: duration + 1,
			},
		}},
	}
}

// FlashCrowd is a stress scenario beyond the paper's testbed: a quiet host
// that is suddenly saturated by a burst of arrivals mid-experiment (deadline
// night in a departmental lab). Forecasters face an abrupt regime change
// instead of the smooth load the six UCSD profiles produce.
func FlashCrowd(duration float64) Profile {
	crowdStart := duration * 0.4
	crowdLen := duration * 0.2
	var fixtures []Fixture
	for i := 0; i < 4; i++ {
		fixtures = append(fixtures, Fixture{
			At: crowdStart + float64(i)*5,
			Spec: simos.ProcSpec{
				Name: "crowd", Demand: math.Inf(1), WallLimit: crowdLen,
			},
		})
	}
	return Profile{
		Name: "flashcrowd", Seed: 707,
		JobRate: 1.0 / 600, JobShape: jobShape, JobScale: 6, JobMax: 200,
		Fixtures: fixtures,
	}
}

// Profiles returns all six host profiles for an experiment of the given
// duration, in the paper's table order.
func Profiles(duration float64) []Profile {
	return []Profile{
		Thing2(),
		Thing1(),
		Conundrum(duration),
		Beowulf(),
		Gremlin(),
		Kongo(duration),
	}
}
