// Package workload generates the synthetic load placed on the simulated
// hosts. It substitutes for the August-1998 UCSD departmental users of the
// paper.
//
// Two generative ingredients give the load the statistical character the
// paper measures:
//
//   - Batch jobs arrive in a Poisson stream whose rate follows a daily
//     cycle, with CPU demands drawn from a bounded Pareto distribution.
//     Heavy-tailed service demands are the standard generative model for
//     long-range dependence: an M/G/infinity-style load series with Pareto
//     shape alpha has Hurst parameter H = (3 - alpha)/2, so alpha = 1.6
//     targets the H ~ 0.7 the paper estimates.
//   - Interactive sessions are processes alternating short compute bursts
//     with think-time sleeps, modelling the workstation console users.
//
// Each of the paper's six hosts is described by a Profile; fixtures encode
// the two anomalous hosts (conundrum's nice-19 background spinner, kongo's
// long-running full-priority job).
package workload

import (
	"math"
	"math/rand"

	"nwscpu/internal/simos"
)

// Pareto draws a Pareto(alpha, xm) variate: xm * U^(-1/alpha).
// It panics if alpha or xm is not positive.
func Pareto(rng *rand.Rand, alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("workload: Pareto parameters must be positive")
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// BoundedPareto draws a Pareto(alpha, xm) variate truncated (by inverse-CDF
// restriction, not rejection) to [xm, max]. It panics on invalid parameters.
func BoundedPareto(rng *rand.Rand, alpha, xm, max float64) float64 {
	if alpha <= 0 || xm <= 0 || max <= xm {
		panic("workload: BoundedPareto parameters invalid")
	}
	// Inverse CDF of the bounded Pareto distribution.
	u := rng.Float64()
	la := math.Pow(xm, alpha)
	ha := math.Pow(max, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Exp draws an exponential variate with the given mean.
// It panics if mean is not positive.
func Exp(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		panic("workload: Exp mean must be positive")
	}
	return rng.ExpFloat64() * mean
}

// Arrival is one scheduled process arrival.
type Arrival struct {
	T    float64
	Spec simos.ProcSpec
}

// Fixture is a statically scheduled process (e.g. a background spinner that
// is present for the entire experiment).
type Fixture struct {
	At   float64
	Spec simos.ProcSpec
}

// Profile describes the load placed on one host.
type Profile struct {
	// Name is the host name (thing1, thing2, ...).
	Name string
	// Seed makes the generated arrival stream reproducible.
	Seed int64

	// JobRate is the mean Poisson arrival rate (jobs per second) of batch
	// jobs, before daily-cycle modulation. Zero disables batch jobs.
	JobRate float64
	// JobShape is the Pareto tail exponent alpha of batch CPU demands.
	JobShape float64
	// JobScale is the Pareto scale xm (minimum CPU demand, seconds).
	JobScale float64
	// JobMax bounds batch CPU demands (seconds).
	JobMax float64
	// JobSysFrac is the system-time fraction of batch jobs.
	JobSysFrac float64
	// JobNice is the nice value of batch jobs.
	JobNice int
	// JobBurstCPU and JobBurstSleep, when JobBurstCPU > 0, make batch jobs
	// alternate computation with short I/O-like sleeps instead of spinning.
	// Real compilations and simulations block on I/O regularly, which keeps
	// their scheduler CPU-usage estimate moderate; a host populated only
	// with pure spinners over-triggers the probe-eviction (kongo) effect.
	JobBurstCPU   float64
	JobBurstSleep float64

	// SessionRate is the Poisson arrival rate of interactive sessions.
	// Zero disables sessions.
	SessionRate float64
	// SessionMeanBurst is the mean compute-burst length (CPU seconds).
	SessionMeanBurst float64
	// SessionMeanThink is the mean think time between bursts (seconds).
	SessionMeanThink float64
	// SessionMeanLen is the mean session length (wall seconds) when session
	// lengths are exponential (SessionLenShape == 0).
	SessionMeanLen float64
	// SessionLenShape, when positive, draws session lengths from a bounded
	// Pareto distribution instead: shape alpha = SessionLenShape, scale =
	// SessionLenScale, bound = SessionLenMax. Heavy-tailed ON periods are
	// the second standard source of long-range dependence (Willinger et
	// al.), and they model the paper's interactive workstations — where the
	// load comes from people, not batch queues — without populating the
	// hosts with long-running CPU-bound spinners.
	SessionLenShape float64
	SessionLenScale float64
	SessionLenMax   float64

	// DailyCycle, when true, modulates arrival rates sinusoidally over a
	// 24-hour period (peak at 16:00 virtual time, amplitude DailyAmp).
	DailyCycle bool
	// DailyAmp is the relative amplitude of the daily cycle in [0, 1).
	DailyAmp float64

	// FlashStart, FlashLen and FlashMult describe a flash crowd: inside the
	// window [FlashStart, FlashStart+FlashLen) every arrival rate is
	// multiplied by FlashMult. FlashLen == 0 (the default) disables it.
	FlashStart float64
	FlashLen   float64
	FlashMult  float64

	// StormPeriod, StormDuty and StormMult describe an ON/OFF batch storm: a
	// square wave of period StormPeriod seconds that multiplies arrival
	// rates by StormMult for the first StormDuty fraction of each period
	// (a batch queue draining on a cron cadence). StormPeriod == 0 or
	// StormMult == 0 (the default) disables it.
	StormPeriod float64
	StormDuty   float64
	StormMult   float64

	// ChaosAmp, when positive, modulates arrival rates by a deterministic
	// chaotic signal: a logistic map x <- 4x(1-x) iterated every ChaosStep
	// seconds (default 60) from a seed-derived x0, scaled into
	// [1-ChaosAmp, 1+ChaosAmp]. Low-dimensional chaotic load is the regime
	// where Garland & Bradley show linear predictors break down; the grid
	// harness uses it to stress the forecaster bank with structure that is
	// deterministic yet non-periodic.
	ChaosAmp  float64
	ChaosStep float64

	// Fixtures are statically scheduled processes.
	Fixtures []Fixture
}

const day = 86400.0

// rateAt returns the daily-cycle arrival rate multiplier at time t.
func (p Profile) rateAt(t float64) float64 {
	if !p.DailyCycle {
		return 1
	}
	// Peak at 16:00; trough at 04:00.
	phase := 2 * math.Pi * (t/day - 16.0/24.0)
	return 1 + p.DailyAmp*math.Cos(phase)
}

// peakMult bounds the combined rate multiplier over all of time; the
// thinning envelope in Generate must dominate every instantaneous rate.
func (p Profile) peakMult() float64 {
	m := 1 + p.DailyAmp
	if p.FlashLen > 0 && p.FlashMult > 1 {
		m *= p.FlashMult
	}
	if p.StormPeriod > 0 && p.StormMult > 1 {
		m *= p.StormMult
	}
	if p.ChaosAmp > 0 {
		m *= 1 + p.ChaosAmp
	}
	return m
}

// rateFn returns the full time-varying rate multiplier as a closure. The
// chaotic term iterates its logistic map incrementally, so each generation
// pass must take a fresh closure and call it with non-decreasing times —
// which the Poisson passes in Generate do by construction.
func (p Profile) rateFn() func(t float64) float64 {
	chaos := func(float64) float64 { return 1 }
	if p.ChaosAmp > 0 {
		step := p.ChaosStep
		if step <= 0 {
			step = 60
		}
		// Seed-derived x0 strictly inside (0, 1); re-injected if an
		// iterate ever collapses onto the map's absorbing edge.
		x := 0.137 + 0.7*float64(uint64(p.Seed*2654435761)%997)/997.0
		n := 0
		amp := p.ChaosAmp
		chaos = func(t float64) float64 {
			for k := int(t / step); n < k; n++ {
				x = 4 * x * (1 - x)
				if x <= 0 || x >= 1 {
					x = 0.339
				}
			}
			return 1 + amp*(2*x-1)
		}
	}
	return func(t float64) float64 {
		m := p.rateAt(t)
		if p.FlashLen > 0 && t >= p.FlashStart && t < p.FlashStart+p.FlashLen {
			m *= p.FlashMult
		}
		if p.StormPeriod > 0 && p.StormMult > 0 {
			if math.Mod(t, p.StormPeriod) < p.StormDuty*p.StormPeriod {
				m *= p.StormMult
			}
		}
		return m * chaos(t)
	}
}

// Generate produces the arrival stream for an experiment of the given
// duration (seconds), sorted by arrival time, fixtures included.
// It panics if duration is not positive.
func (p Profile) Generate(duration float64) []Arrival {
	if duration <= 0 {
		panic("workload: Generate duration must be positive")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var out []Arrival

	for _, f := range p.Fixtures {
		if f.At < duration {
			out = append(out, Arrival{T: f.At, Spec: f.Spec})
		}
	}

	// Batch jobs: thinned Poisson process at peak rate.
	if p.JobRate > 0 {
		rate := p.rateFn()
		peak := p.JobRate * p.peakMult()
		t := 0.0
		for {
			t += Exp(rng, 1/peak)
			if t >= duration {
				break
			}
			if rng.Float64()*peak > p.JobRate*rate(t) {
				continue // thinned out
			}
			demand := BoundedPareto(rng, p.JobShape, p.JobScale, p.JobMax)
			out = append(out, Arrival{T: t, Spec: simos.ProcSpec{
				Name:       "job",
				Nice:       p.JobNice,
				Demand:     demand,
				SysFrac:    p.JobSysFrac,
				BurstCPU:   p.JobBurstCPU,
				BurstSleep: p.JobBurstSleep,
			}})
		}
	}

	// Interactive sessions.
	if p.SessionRate > 0 {
		rate := p.rateFn()
		peak := p.SessionRate * p.peakMult()
		t := 0.0
		for {
			t += Exp(rng, 1/peak)
			if t >= duration {
				break
			}
			if rng.Float64()*peak > p.SessionRate*rate(t) {
				continue
			}
			var length float64
			if p.SessionLenShape > 0 {
				length = BoundedPareto(rng, p.SessionLenShape, p.SessionLenScale, p.SessionLenMax)
			} else {
				length = Exp(rng, p.SessionMeanLen)
			}
			out = append(out, Arrival{T: t, Spec: simos.ProcSpec{
				Name:       "session",
				Demand:     math.Inf(1),
				WallLimit:  length + 1,
				BurstCPU:   Exp(rng, p.SessionMeanBurst) + 0.01,
				BurstSleep: Exp(rng, p.SessionMeanThink) + 0.1,
			}})
		}
	}

	sortArrivals(out)
	return out
}

func sortArrivals(as []Arrival) {
	// Insertion sort on nearly sorted data; streams are generated in time
	// order per class, so only the class merge is out of order.
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].T < as[j-1].T; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// Submit loads the whole arrival stream onto a host.
func Submit(h *simos.Host, as []Arrival) {
	ts := make([]float64, len(as))
	specs := make([]simos.ProcSpec, len(as))
	for i, a := range as {
		ts[i] = a.T
		specs[i] = a.Spec
	}
	h.SubmitAll(ts, specs)
}
