// Package nwscpu_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation.
//
// Each BenchmarkTableN / BenchmarkFigN first ensures the underlying
// simulated traces exist (collected once, outside the timer — they stand in
// for the paper's 24-hour trace collection) and then times the analysis that
// reduces the traces to the published table or figure, logging the rendered
// result so `go test -bench .` output contains the paper-shaped rows.
//
// Scale is controlled by NWSBENCH_SCALE:
//
//	NWSBENCH_SCALE=quick  4000 s runs (CI smoke)
//	default               6-hour runs, 2-day Hurst traces
//	NWSBENCH_SCALE=paper  24-hour runs, 1-week Hurst traces (the paper's)
package nwscpu_test

import (
	"os"
	"sync"
	"testing"

	"nwscpu/internal/experiments"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		var cfg experiments.Config
		switch os.Getenv("NWSBENCH_SCALE") {
		case "quick":
			cfg = experiments.QuickConfig()
		case "paper":
			cfg = experiments.DefaultConfig()
		default:
			cfg = experiments.Config{Duration: 6 * 3600, WeekDuration: 2 * 86400, Parallel: true}
		}
		suite = experiments.NewSuite(cfg)
	})
	return suite
}

func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

func BenchmarkTable2(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

func BenchmarkTable3(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

func BenchmarkTable4(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "short", "week"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatTable4(rows)
	}
	b.Log("\n" + out)
}

func BenchmarkTable5(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

func BenchmarkTable6(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "medium"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

func BenchmarkFig1(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.FigureHosts, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		traces, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		out = ""
		for _, host := range experiments.FigureHosts {
			out += host + "\n" + experiments.AsciiPlot(traces[host], 80, 12, 0, 1)
		}
	}
	b.Log("\n" + out)
}

func BenchmarkFig2(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.FigureHosts, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acf1 float64
	for i := 0; i < b.N; i++ {
		acfs, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		acf1 = acfs["thing1"][1]
	}
	b.Logf("thing1 lag-1 autocorrelation: %.3f (paper: slow decay over 360 lags)", acf1)
}

func BenchmarkFig3(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.FigureHosts, "week"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res []experiments.PoxResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.Logf("%s: Hurst %.2f from %d pox points (paper: 0.70 for both)", r.Host, r.Hurst, len(r.Points))
	}
}

func BenchmarkFig4(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.FigureHosts, "medium"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		traces, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		out = ""
		for _, host := range experiments.FigureHosts {
			out += host + "\n" + experiments.AsciiPlot(traces[host], 80, 12, 0, 1)
		}
	}
	b.Log("\n" + out)
}

func BenchmarkAblationMixture(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch([]string{"thing1"}, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationMixture("thing1")
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkAblationBias(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationBias("conundrum")
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkAblationProbeLen(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationProbeLen("kongo", []float64{1.5, 6})
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkAblationAggregation(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch([]string{"thing2"}, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationAggregation("thing2", []int{1, 6, 30, 60})
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkExtensionSMP(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.ExtensionSMP([]int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatSMP(rows)
	}
	b.Log("\n" + out)
}

func BenchmarkExtensionForecasters(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.FigureHosts, "week"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.ExtensionForecasters(experiments.FigureHosts)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatForecasterExt(rows)
	}
	b.Log("\n" + out)
}

func BenchmarkAblationScheduler(b *testing.B) {
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a := experiments.AblationScheduler(8, 40, 600, 42)
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkExtensionResiduals(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch(experiments.HostNames, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		rows, err := s.ExtensionResiduals()
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.FormatResiduals(rows)
	}
	b.Log("\n" + out)
}

func BenchmarkAblationEq2Weight(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationEq2Weight()
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkAblationPartition(b *testing.B) {
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a := experiments.AblationPartition(600, 600, 42)
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkAblationSelectWindow(b *testing.B) {
	s := benchSuite(b)
	if err := s.Prefetch([]string{"thing2"}, "short"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a, err := s.AblationSelectWindow("thing2", []int{0, 50})
		if err != nil {
			b.Fatal(err)
		}
		out = a.String()
	}
	b.Log(out)
}

func BenchmarkAblationDynamic(b *testing.B) {
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a := experiments.AblationDynamic(8, 40, 600, 42)
		out = a.String()
	}
	b.Log(out)
}
